#include "service/service.hpp"

#include <cstdio>

#include "common/rng.hpp"
#include "core/format.hpp"
#include "service/durability.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2::service {

namespace {

f64 microsBetween(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<f64, std::micro>(to - from).count();
}

const char* chaosModeName(ChaosFault::Mode mode) {
  switch (mode) {
    case ChaosFault::Mode::BitFlip: return "bit_flip";
    case ChaosFault::Mode::Abort: return "abort";
    case ChaosFault::Mode::Stall: return "stall";
    case ChaosFault::Mode::Wedge: return "wedge";
    case ChaosFault::Mode::ArenaExhaust: return "arena_exhaust";
    default: return "none";
  }
}

}  // namespace

CompressionService::CompressionService(ServiceConfig config)
    : config_(std::move(config)) {
  require(config_.workers > 0, "ServiceConfig: workers must be positive");
  require(config_.maxQueueDepth > 0,
          "ServiceConfig: maxQueueDepth must be positive");
  require(config_.maxBatchJobs > 0,
          "ServiceConfig: maxBatchJobs must be positive");
  require(config_.maxBatchBytes > 0,
          "ServiceConfig: maxBatchBytes must be positive");
  require(config_.retry.maxAttempts > 0,
          "ServiceConfig: retry.maxAttempts must be positive");
  require(!config_.watchdog.enabled || config_.watchdog.pollMillis > 0,
          "ServiceConfig: watchdog.pollMillis must be positive");

  devices_ = config_.devices.empty()
                 ? gpusim::homogeneousFleet(gpusim::a100_40gb(),
                                            config_.workers)
                 : config_.devices;
  ledger_ = std::make_shared<detail::Ledger>();

  telemetry::MetricsRegistry& reg = telemetry::registry();
  instruments_ = Instruments{
      &reg.counter("service.submitted"),
      &reg.counter("service.accepted"),
      &reg.counter("service.completed"),
      &reg.counter("service.failed"),
      &reg.counter("service.abandoned"),
      &reg.counter("service.degraded"),
      &reg.counter("service.rejected.queue_full"),
      &reg.counter("service.rejected.quota"),
      &reg.counter("service.rejected.shutdown"),
      &reg.counter("service.rejected.circuit_open"),
      &reg.counter("service.batches"),
      &reg.counter("service.jobs_dispatched"),
      &reg.counter("service.watchdog.recoveries"),
      &reg.counter("service.retry.attempts"),
      &reg.counter("service.retry.exhausted"),
      &reg.counter("service.batch_splits"),
      &reg.counter("service.breaker.opens"),
      &reg.counter("service.chaos.injected"),
      &reg.histogram("service.wait_us"),
      &reg.histogram("service.service_us"),
      &reg.histogram("service.batch_jobs"),
  };
  ledger_->depthGauge = &reg.gauge("service.queue_depth");

  paused_ = config_.startPaused;

  // Durable intake: recover (and re-queue) the previous life's pending
  // jobs before any worker can race the lanes — replayed work runs first.
  if (!config_.jobJournalPath.empty()) recoverJobJournal();

  workers_.reserve(config_.workers);
  for (u32 i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
  if (config_.watchdog.enabled) {
    watchdog_ = std::thread([this] { watchdogLoop(); });
  }
}

void CompressionService::recoverJobJournal() {
  const std::string& path = config_.jobJournalPath;
  JobJournalSummary summary;
  bool resumed = false;
  usize resumeBytes = 0;
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    std::fclose(probe);
    // An unrecoverable journal (bad header / foreign ownerTag) throws —
    // construction fails rather than silently dropping accepted work.
    const io::ReplayResult replay = io::replayJournal(path);
    require(replay.ownerTag == kJobJournalOwnerTag,
            "service: " + path + " is not a job journal (ownerTag mismatch)");
    summary = summarizeJobJournal(replay);
    resumed = !summary.pending.empty();
    resumeBytes = replay.validBytes;
  }
  if (resumed) {
    // Keep the old journal (torn tail truncated): the resubmissions
    // below supersede their old ids record-by-record, so a crash at any
    // point leaves every pending job recoverable exactly once.
    jobJournal_ = io::JournalWriter::resume(path, kJobJournalOwnerTag, 0,
                                            resumeBytes);
  } else {
    // Nothing pending: start a fresh journal (atomic replacement).
    jobJournal_ = std::make_unique<io::JournalWriter>(path,
                                                      kJobJournalOwnerTag, 0);
  }
  for (JobAcceptRecord& acc : summary.pending) {
    SubmitResult res = submit(acc.tenant, acc.kind, acc.precision,
                              std::move(acc.input), acc.config, acc.priority,
                              /*supersedesId=*/acc.jobId);
    require(res.accepted(),
            "service: journal replay resubmission rejected (" + res.detail +
                ")");
    replayedJobs_.push_back(ReplayedJob{acc.jobId, std::move(res.ticket)});
  }
}

io::JournalStatus CompressionService::jobJournalStatus() const {
  io::JournalStatus st;
  if (!jobJournal_) return st;
  st.attached = true;
  st.path = jobJournal_->path();
  st.baseTick = jobJournal_->baseTick();
  st.recordsAppended = jobJournal_->recordsAppended();
  st.recordsSynced = jobJournal_->recordsSynced();
  return st;
}

CompressionService::~CompressionService() {
  shutdownImpl(std::nullopt);
}

SubmitResult CompressionService::reject(RejectReason reason,
                                        std::string detail,
                                        const std::string& tenant) {
  switch (reason) {
    case RejectReason::QueueFull:
      instruments_.rejectedQueueFull->add(1);
      statRejectedQueueFull_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::QuotaExceeded:
      instruments_.rejectedQuota->add(1);
      statRejectedQuota_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::ShuttingDown:
      instruments_.rejectedShutdown->add(1);
      statRejectedShutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RejectReason::CircuitOpen:
      instruments_.rejectedCircuitOpen->add(1);
      statRejectedCircuitOpen_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (reg.enabled()) {
    reg.counter("service.tenant." + tenant + ".rejected").add(1);
  }
  SubmitResult out;
  out.reason = reason;
  out.detail = std::move(detail);
  return out;
}

SubmitResult CompressionService::submit(const std::string& tenant,
                                        JobKind kind, Precision precision,
                                        std::vector<std::byte> input,
                                        const core::Config& config,
                                        u8 priority, u64 supersedesId) {
  require(!tenant.empty(), "CompressionService::submit: empty tenant id");
  config.validate();
  instruments_.submitted->add(1);
  statSubmitted_.fetch_add(1, std::memory_order_relaxed);

  if (!accepting_.load(std::memory_order_acquire)) {
    return reject(RejectReason::ShuttingDown, "service is shutting down",
                  tenant);
  }

  // Circuit breaker: shed a tenant whose jobs keep failing before its
  // bytes ever reach the ledger.
  {
    std::string breakerDetail;
    if (!breakerAdmits(tenant, &breakerDetail)) {
      return reject(RejectReason::CircuitOpen, std::move(breakerDetail),
                    tenant);
    }
  }

  // Admission: reserve a queue slot and the tenant's bytes, or shed load.
  {
    std::lock_guard<std::mutex> lock(ledger_->mutex);
    if (ledger_->depth >= config_.maxQueueDepth) {
      return reject(RejectReason::QueueFull,
                    "queue depth at configured maximum (" +
                        std::to_string(config_.maxQueueDepth) + ")",
                    tenant);
    }
    if (config_.tenantQuotaBytes > 0) {
      u64 outstanding = 0;
      auto it = ledger_->tenantBytes.find(tenant);
      if (it != ledger_->tenantBytes.end()) outstanding = it->second;
      if (outstanding + input.size() > config_.tenantQuotaBytes) {
        return reject(
            RejectReason::QuotaExceeded,
            "tenant '" + tenant + "' outstanding bytes " +
                std::to_string(outstanding + input.size()) +
                " would exceed quota " +
                std::to_string(config_.tenantQuotaBytes),
            tenant);
      }
    }
    ledger_->depth += 1;
    ledger_->tenantBytes[tenant] += input.size();
    if (ledger_->depthGauge != nullptr) {
      ledger_->depthGauge->set(static_cast<f64>(ledger_->depth));
    }
  }

  auto job = std::make_shared<detail::Job>();
  job->tenant = tenant;
  job->kind = kind;
  job->precision = precision;
  job->priority = priority;
  job->config = config;
  job->input = std::move(input);
  job->submitted = std::chrono::steady_clock::now();
  job->ledger = ledger_;

  // Phase 1: reserve the job id (the journal record needs it) without
  // exposing the job to the scheduler yet.
  bool lostToShutdown = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_.load(std::memory_order_relaxed)) {
      lostToShutdown = true;
    } else {
      job->id = nextJobId_++;
    }
  }
  if (lostToShutdown) {
    ledger_->release(tenant, job->input.size());
    return reject(RejectReason::ShuttingDown, "service is shutting down",
                  tenant);
  }

  // Phase 2 (durable intake): append + sync the Accept record BEFORE the
  // job becomes runnable. If the sync dies (a crash drill, a full disk),
  // the error propagates and the job was never queued — an un-acked
  // submission recovery is allowed to lose. The ack a caller gets by
  // this returning implies a durable record.
  if (jobJournal_) {
    JobAcceptRecord acc;
    acc.jobId = job->id;
    acc.supersedesId = supersedesId;
    acc.tenant = tenant;
    acc.kind = kind;
    acc.precision = precision;
    acc.priority = priority;
    acc.config = config;
    acc.input = job->input;  // job holds the canonical copy
    try {
      jobJournal_->append(kJobRecordAccept, encodeJobAccept(acc));
      jobJournal_->sync();
    } catch (...) {
      // No ack happens: un-charge the admission so the job is not a
      // phantom ledger entry (a drain would otherwise wait on it
      // forever — the crash drills die exactly here).
      ledger_->release(tenant, job->input.size());
      throw;
    }
    job->durableResolve = [this](u64 jobId, Outcome outcome) {
      try {
        jobJournal_->append(kJobRecordResolve,
                            encodeJobResolve(jobId, outcome));
        jobJournal_->sync();
      } catch (const Error&) {
        // Best-effort: a lost resolve re-executes the job at the next
        // recovery; it must never kill the resolving thread.
      }
    };
  }

  // Phase 3: publish to the scheduler (re-checking intake — shutdown may
  // have flipped while we journaled).
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_.load(std::memory_order_relaxed)) {
      lostToShutdown = true;
    } else {
      lanes_.push(job);
    }
  }
  if (lostToShutdown) {
    // The Accept record is already durable; retire it so a restart does
    // not replay a job whose submission we are about to refuse.
    if (job->durableResolve) {
      job->durableResolve(job->id, Outcome::Abandoned);
    }
    ledger_->release(tenant, job->input.size());
    return reject(RejectReason::ShuttingDown, "service is shutting down",
                  tenant);
  }
  workCv_.notify_one();

  instruments_.accepted->add(1);
  statAccepted_.fetch_add(1, std::memory_order_relaxed);
  SubmitResult out;
  out.ticket = Ticket(std::move(job));
  return out;
}

void CompressionService::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void CompressionService::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  workCv_.notify_all();
}

bool CompressionService::shutdown() {
  return shutdownImpl(std::nullopt);
}

bool CompressionService::shutdown(std::chrono::milliseconds drainDeadline) {
  return shutdownImpl(drainDeadline);
}

bool CompressionService::shutdownImpl(
    std::optional<std::chrono::milliseconds> deadline) {
  std::lock_guard<std::mutex> shutdownLock(shutdownMutex_);
  if (shutdownDone_) return drained_;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_.store(false, std::memory_order_release);
    paused_ = false;  // a paused service must still drain accepted work
  }
  workCv_.notify_all();

  bool drained = true;
  {
    std::unique_lock<std::mutex> lock(ledger_->mutex);
    auto idle = [&] { return ledger_->depth == 0; };
    if (deadline.has_value()) {
      drained = ledger_->cv.wait_for(lock, *deadline, idle);
    } else {
      ledger_->cv.wait(lock, idle);
    }
  }

  if (!drained) {
    // Deadline expired: still-queued jobs complete as failures instead of
    // hanging their tickets; jobs already on a worker run to completion.
    std::vector<std::shared_ptr<detail::Job>> abandoned;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Raised before the sweep so a watchdog twin or a retry waking
      // from backoff cannot requeue into lanes the drain has already
      // emptied — such jobs resolve as Abandoned (requeueOrAbandon).
      requeuesAbandon_ = true;
      abandoned = lanes_.drain();
    }
    for (std::shared_ptr<detail::Job>& job : abandoned) {
      JobResult r;
      r.outcome = Outcome::Abandoned;
      r.error = "abandoned: shutdown deadline expired before dispatch";
      r.tenant = job->tenant;
      r.kind = job->kind;
      r.jobId = job->id;
      finishJob(*job, std::move(r), /*abandoned=*/true);
    }
    std::unique_lock<std::mutex> lock(ledger_->mutex);
    ledger_->cv.wait(lock, [&] { return ledger_->depth == 0; });
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workCv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  {
    std::lock_guard<std::mutex> lock(watchdogMutex_);
    watchdogStop_ = true;
    inFlight_.clear();
  }
  watchdogCv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  shutdownDone_ = true;
  drained_ = drained;
  return drained;
}

ServiceStats CompressionService::stats() const {
  ServiceStats s;
  s.submitted = statSubmitted_.load(std::memory_order_relaxed);
  s.accepted = statAccepted_.load(std::memory_order_relaxed);
  s.rejectedQueueFull =
      statRejectedQueueFull_.load(std::memory_order_relaxed);
  s.rejectedQuota = statRejectedQuota_.load(std::memory_order_relaxed);
  s.rejectedShutdown =
      statRejectedShutdown_.load(std::memory_order_relaxed);
  s.rejectedCircuitOpen =
      statRejectedCircuitOpen_.load(std::memory_order_relaxed);
  s.completed = statCompleted_.load(std::memory_order_relaxed);
  s.failed = statFailed_.load(std::memory_order_relaxed);
  s.abandoned = statAbandoned_.load(std::memory_order_relaxed);
  s.degraded = statDegraded_.load(std::memory_order_relaxed);
  s.dispatched = statDispatched_.load(std::memory_order_relaxed);
  s.batches = statBatches_.load(std::memory_order_relaxed);
  s.watchdogRecoveries =
      statWatchdogRecoveries_.load(std::memory_order_relaxed);
  s.retries = statRetries_.load(std::memory_order_relaxed);
  s.retriesExhausted =
      statRetriesExhausted_.load(std::memory_order_relaxed);
  s.batchSplits = statBatchSplits_.load(std::memory_order_relaxed);
  s.breakerOpens = statBreakerOpens_.load(std::memory_order_relaxed);
  s.chaosInjected = statChaosInjected_.load(std::memory_order_relaxed);
  s.streamFaultsDetected =
      statStreamFaultsDetected_.load(std::memory_order_relaxed);
  s.streamFaultRelaunches =
      statStreamFaultRelaunches_.load(std::memory_order_relaxed);
  s.queueDepth = queueDepth();
  return s;
}

usize CompressionService::queueDepth() const {
  std::lock_guard<std::mutex> lock(ledger_->mutex);
  return ledger_->depth;
}

u64 CompressionService::tenantOutstandingBytes(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(ledger_->mutex);
  auto it = ledger_->tenantBytes.find(tenant);
  return it == ledger_->tenantBytes.end() ? 0 : it->second;
}

cas::PutResult CompressionService::putObject(const std::string& tenant,
                                             const std::string& name,
                                             ConstByteSpan bytes) {
  require(config_.store != nullptr,
          "service: putObject requires an attached CAS (ServiceConfig::store)");
  return config_.store->put(tenant, name, bytes);
}

std::vector<std::byte> CompressionService::getObject(
    const std::string& tenant, const std::string& name) const {
  require(config_.store != nullptr,
          "service: getObject requires an attached CAS (ServiceConfig::store)");
  return config_.store->get(tenant, name);
}

bool CompressionService::eraseObject(const std::string& tenant,
                                     const std::string& name) {
  require(config_.store != nullptr,
          "service: eraseObject requires an attached CAS "
          "(ServiceConfig::store)");
  return config_.store->erase(tenant, name);
}

void CompressionService::workerLoop(u32 worker) {
  // Each worker owns one warm stream pinned to its device; reconfigure()
  // per batch re-targets the codec without dropping the scratch arena.
  core::CompressorStream stream(core::Config{},
                                devices_[worker % devices_.size()]);
  // In-stream fault counters are cumulative per stream; fold the deltas
  // into the service-wide totals after every batch.
  u64 seenFaultsDetected = 0;
  u64 seenFaultRelaunches = 0;
  for (;;) {
    std::vector<std::shared_ptr<detail::Job>> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workCv_.wait(lock, [&] {
        return stopping_ || (!paused_ && lanes_.entries() > 0);
      });
      if (stopping_) return;
      std::shared_ptr<detail::Job> head = lanes_.pop();
      if (head == nullptr) continue;  // only tombstones were queued
      batch.push_back(std::move(head));
      if (config_.maxBatchJobs > 1) {
        lanes_.popBatch(*batch[0], batch, config_.maxBatchJobs - 1,
                        config_.maxBatchBytes);
      }
      for (std::shared_ptr<detail::Job>& job : batch) {
        job->dispatchSeq = ++dispatchSeq_;
      }
    }
    execute(batch, stream, worker);
    const u64 detected = stream.faultsDetected();
    const u64 relaunches = stream.faultRelaunches();
    statStreamFaultsDetected_.fetch_add(detected - seenFaultsDetected,
                                        std::memory_order_relaxed);
    statStreamFaultRelaunches_.fetch_add(relaunches - seenFaultRelaunches,
                                         std::memory_order_relaxed);
    seenFaultsDetected = detected;
    seenFaultRelaunches = relaunches;
  }
}

void CompressionService::execute(
    std::vector<std::shared_ptr<detail::Job>>& batch,
    core::CompressorStream& stream, u32 worker) {
  const auto dispatched = std::chrono::steady_clock::now();
  for (const std::shared_ptr<detail::Job>& job : batch) {
    job->attempt.fetch_add(1, std::memory_order_relaxed);
  }
  statDispatched_.fetch_add(batch.size(), std::memory_order_relaxed);
  statBatches_.fetch_add(1, std::memory_order_relaxed);
  instruments_.jobsDispatched->add(batch.size());
  instruments_.batches->add(1);
  instruments_.batchJobs->record(batch.size());

  // Chaos: consult the hook for the head job and arm its fault plan on
  // this worker's stream for exactly this execution.
  if (config_.chaosHook) {
    detail::Job& head = *batch[0];
    ChaosJobInfo info;
    info.jobId = head.id;
    info.tenant = head.tenant;
    info.kind = head.kind;
    info.inputBytes = head.input.size();
    info.attempt = head.attempt.load(std::memory_order_relaxed) - 1;
    armChaosFault(stream, config_.chaosHook(info));
  }

  if (config_.watchdog.enabled) {
    watchdogWatch(batch, dispatched, stream.device());
  }

  std::vector<JobResult> results(batch.size());
  std::string failure;
  try {
    stream.reconfigure(batch[0]->config);
    if (batch[0]->kind == JobKind::Compress) {
      if (batch[0]->precision == Precision::F32) {
        runCompress<f32>(batch, stream, results);
      } else {
        runCompress<f64>(batch, stream, results);
      }
    } else {
      runDecompress(batch, stream, results);
    }
  } catch (const std::exception& e) {
    failure = e.what();
    if (failure.empty()) failure = "unknown codec error";
  }
  if (config_.chaosHook) stream.launcher().clearFaultPlan();

  const auto finishedAt = std::chrono::steady_clock::now();

  if (!failure.empty()) {
    if (batch.size() > 1) {
      // Fault isolation: one poisoned job must not fail its batchmates.
      // Requeue every member to run alone; the solo executions decide
      // retry/degrade/fail per job.
      statBatchSplits_.fetch_add(1, std::memory_order_relaxed);
      instruments_.batchSplits->add(1);
      if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
        trace->instant(
            "service.batch_split",
            {telemetry::TraceArg::num("jobs",
                                      static_cast<f64>(batch.size()))});
      }
      for (std::shared_ptr<detail::Job>& job : batch) {
        requeueSolo(job);
      }
      return;
    }

    detail::Job& job = *batch[0];
    const u32 attempt = job.attempt.load(std::memory_order_relaxed);
    if (attempt < config_.retry.maxAttempts) {
      statRetries_.fetch_add(1, std::memory_order_relaxed);
      instruments_.retries->add(1);
      if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
        trace->instant(
            "service.retry",
            {telemetry::TraceArg::str("tenant", job.tenant),
             telemetry::TraceArg::num("job_id", static_cast<f64>(job.id)),
             telemetry::TraceArg::num("attempt", attempt)});
      }
      backoffSleep(job.id, attempt);
      requeueSolo(batch[0]);
      return;
    }

    statRetriesExhausted_.fetch_add(1, std::memory_order_relaxed);
    instruments_.retriesExhausted->add(1);
    if (job.kind == JobKind::Decompress && config_.degradedDecode) {
      runDegradedDecode(job, stream, results[0], failure);
    } else {
      results[0] = JobResult{};
      results[0].outcome = Outcome::Failed;
      results[0].error = failure;
    }
  }

  for (usize i = 0; i < batch.size(); ++i) {
    detail::Job& job = *batch[i];
    JobResult& r = results[i];
    r.tenant = job.tenant;
    r.kind = job.kind;
    r.jobId = job.id;
    r.dispatchSeq = job.dispatchSeq;
    r.batchJobs = static_cast<u32>(batch.size());
    r.worker = worker;
    r.device = stream.device().name;
    r.waitUs = microsBetween(job.submitted, dispatched);
    r.serviceUs = microsBetween(dispatched, finishedAt);
    finishJob(job, std::move(r), /*abandoned=*/false);
  }
}

template <FloatingPoint T>
void CompressionService::runCompress(
    std::vector<std::shared_ptr<detail::Job>>& batch,
    core::CompressorStream& stream, std::vector<JobResult>& results) {
  auto fieldOf = [](const detail::Job& job) {
    return std::span<const T>(
        reinterpret_cast<const T*>(job.input.data()),
        job.input.size() / sizeof(T));
  };
  if (batch.size() == 1) {
    results[0].compressed = stream.compress<T>(fieldOf(*batch[0]));
    results[0].ok = true;
    results[0].outcome = Outcome::Completed;
    return;
  }
  std::vector<std::span<const T>> fields;
  fields.reserve(batch.size());
  for (const std::shared_ptr<detail::Job>& job : batch) {
    fields.push_back(fieldOf(*job));
  }
  std::vector<core::Compressed> outs = stream.compressBatch<T>(fields);
  for (usize i = 0; i < batch.size(); ++i) {
    results[i].compressed = std::move(outs[i]);
    results[i].ok = true;
    results[i].outcome = Outcome::Completed;
  }
}

template void CompressionService::runCompress<f32>(
    std::vector<std::shared_ptr<detail::Job>>&, core::CompressorStream&,
    std::vector<JobResult>&);
template void CompressionService::runCompress<f64>(
    std::vector<std::shared_ptr<detail::Job>>&, core::CompressorStream&,
    std::vector<JobResult>&);

void CompressionService::runDecompress(
    std::vector<std::shared_ptr<detail::Job>>& batch,
    core::CompressorStream& stream, std::vector<JobResult>& results) {
  if (batch.size() == 1) {
    detail::Job& job = *batch[0];
    JobResult& result = results[0];
    const core::StreamHeader header = core::StreamHeader::parse(job.input);
    if (header.precision == Precision::F32) {
      core::Decompressed<f32> out = stream.decompress<f32>(job.input);
      result.decodedElements = out.data.size();
      result.decompressProfile = out.profile;
      result.decompressed.resize(out.data.size() * sizeof(f32));
      if (!out.data.empty()) {
        std::memcpy(result.decompressed.data(), out.data.data(),
                    result.decompressed.size());
      }
    } else {
      core::Decompressed<f64> out = stream.decompress<f64>(job.input);
      result.decodedElements = out.data.size();
      result.decompressProfile = out.profile;
      result.decompressed.resize(out.data.size() * sizeof(f64));
      if (!out.data.empty()) {
        std::memcpy(result.decompressed.data(), out.data.data(),
                    result.decompressed.size());
      }
    }
    result.ok = true;
    result.outcome = Outcome::Completed;
    return;
  }

  // Fused decode: one launch for the whole batch. A corrupt member throws
  // before any kernel runs; execute()'s batch-split path then requeues
  // every member solo, preserving fault isolation.
  std::vector<ConstByteSpan> streams;
  streams.reserve(batch.size());
  for (const std::shared_ptr<detail::Job>& job : batch) {
    streams.emplace_back(job->input.data(), job->input.size());
  }
  std::vector<core::DecompressedRaw> outs =
      stream.decompressBatchRaw(streams);
  for (usize i = 0; i < batch.size(); ++i) {
    results[i].decodedElements = outs[i].elements;
    results[i].decompressProfile = outs[i].profile;
    results[i].decompressed = std::move(outs[i].data);
    results[i].ok = true;
    results[i].outcome = Outcome::Completed;
  }
}

namespace {

/// Copies a salvage result into the job's JobResult. A clean report means
/// the failure was transient (e.g. an injected fault on the strict path)
/// and the re-decode is complete — the job counts as Completed.
template <FloatingPoint T>
void fillSalvaged(core::Salvaged<T>&& salvaged, JobResult& result,
                  const std::string& failure) {
  result.decodedElements = salvaged.data.size();
  result.decompressed.resize(salvaged.data.size() * sizeof(T));
  if (!salvaged.data.empty()) {
    std::memcpy(result.decompressed.data(), salvaged.data.data(),
                result.decompressed.size());
  }
  result.decompressProfile = salvaged.profile;
  result.decodeReport = std::move(salvaged.report);
  if (result.decodeReport.clean()) {
    result.ok = true;
    result.outcome = Outcome::Completed;
  } else {
    result.outcome = Outcome::Degraded;
    result.error = "degraded decode: " + failure;
  }
}

}  // namespace

void CompressionService::runDegradedDecode(detail::Job& job,
                                           core::CompressorStream& stream,
                                           JobResult& result,
                                           const std::string& failure) {
  result = JobResult{};
  Precision precision = Precision::F32;
  try {
    precision = core::StreamHeader::parse(job.input).precision;
  } catch (const std::exception& e) {
    result.outcome = Outcome::Failed;
    result.error =
        failure + " (header unusable for salvage: " + e.what() + ")";
    return;
  }
  try {
    if (precision == Precision::F32) {
      fillSalvaged(stream.decompressResilient<f32>(job.input), result,
                   failure);
    } else {
      fillSalvaged(stream.decompressResilient<f64>(job.input), result,
                   failure);
    }
  } catch (const std::exception& e) {
    // decompressResilient never throws on corrupt input; this catches
    // environmental failures (allocation) so the worker thread survives.
    result = JobResult{};
    result.outcome = Outcome::Failed;
    result.error = failure + " (salvage failed: " + e.what() + ")";
    return;
  }
  if (result.outcome == Outcome::Degraded) {
    statDegraded_.fetch_add(1, std::memory_order_relaxed);
    instruments_.degraded->add(1);
    if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
      trace->instant(
          "service.degraded",
          {telemetry::TraceArg::str("tenant", job.tenant),
           telemetry::TraceArg::num("job_id", static_cast<f64>(job.id)),
           telemetry::TraceArg::num(
               "bad_blocks",
               static_cast<f64>(result.decodeReport.badBlocks))});
    }
  }
}

void CompressionService::finishJob(detail::Job& job, JobResult result,
                                   bool abandoned) {
  result.attempts = job.attempt.load(std::memory_order_relaxed);
  result.recoveries = job.recoveries.load(std::memory_order_relaxed);
  const u64 bytesIn = job.input.size();
  const u64 bytesOut = result.kind == JobKind::Compress
                           ? result.compressed.stream.size()
                           : result.decompressed.size();
  const Outcome outcome = result.outcome;
  const bool ok = result.ok;
  const f64 waitUs = result.waitUs;
  const f64 serviceUs = result.serviceUs;
  const u32 batchJobs = result.batchJobs;

  // Exactly-once commit: when a watchdog-recovered twin (or a racing
  // cancel) already published, this execution's result is discarded and
  // nothing — counters, breaker, ledger — is recorded twice. Waiters are
  // only woken at the end, after all of that accounting, so a client
  // returning from Ticket::wait() observes the breaker state and quota
  // this outcome implies.
  if (!job.commit(std::move(result))) return;
  job.phase.store(detail::Phase::Done, std::memory_order_release);
  if (config_.watchdog.enabled) watchdogForget(job.id);
  // Durable intake: retire the Accept record (with the full Outcome
  // taxonomy) before waking waiters, so an observed completion is never
  // replayed by a restart.
  if (job.durableResolve) job.durableResolve(job.id, outcome);

  if (abandoned) {
    instruments_.abandoned->add(1);
    statAbandoned_.fetch_add(1, std::memory_order_relaxed);
  } else if (ok) {
    instruments_.completed->add(1);
    statCompleted_.fetch_add(1, std::memory_order_relaxed);
  } else if (outcome != Outcome::Degraded) {
    instruments_.failed->add(1);
    statFailed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!abandoned) {
    instruments_.waitUs->record(static_cast<u64>(waitUs));
    instruments_.serviceUs->record(static_cast<u64>(serviceUs));
    // Abandoned/canceled jobs never ran: they say nothing about the
    // tenant's payload health, so they leave the breaker alone.
    recordBreakerOutcome(job.tenant, ok);
  }

  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (reg.enabled()) {
    const std::string prefix = "service.tenant." + job.tenant;
    reg.counter(prefix + ".jobs").add(1);
    reg.counter(prefix + ".bytes_in").add(bytesIn);
    reg.counter(prefix + ".bytes_out").add(bytesOut);
  }
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->complete(
        "service.job", serviceUs,
        {telemetry::TraceArg::str("tenant", job.tenant),
         telemetry::TraceArg::str("kind", toString(job.kind)),
         telemetry::TraceArg::str("outcome", toString(outcome)),
         telemetry::TraceArg::num("job_id", static_cast<f64>(job.id)),
         telemetry::TraceArg::num("batch_jobs", batchJobs),
         telemetry::TraceArg::num("wait_us", waitUs),
         telemetry::TraceArg::num("ok", ok ? 1.0 : 0.0)});
  }

  ledger_->release(job.tenant, bytesIn);
  job.notifyWaiters();
}

void CompressionService::armChaosFault(core::CompressorStream& stream,
                                       const ChaosFault& fault) {
  stream.launcher().clearFaultPlan();
  if (fault.mode == ChaosFault::Mode::None) return;
  gpusim::FaultPlan plan;
  plan.seed = fault.seed;
  // Fire on the operation's first launch: the next index this stream's
  // launcher will hand out.
  plan.triggerLaunch = stream.launcher().launchCount();
  switch (fault.mode) {
    case ChaosFault::Mode::BitFlip:
      plan.bitFlips = std::max<u32>(1, fault.bitFlips);
      break;
    case ChaosFault::Mode::Abort:
      plan.abortBlock = 0;
      break;
    case ChaosFault::Mode::Stall:
      plan.stallTicks = std::max<u32>(1, fault.stallTicks);
      break;
    case ChaosFault::Mode::Wedge:
      plan.wedgeTicks = std::max<u32>(1, fault.wedgeTicks);
      break;
    case ChaosFault::Mode::ArenaExhaust:
      plan.arenaBudgetBytes = std::max<u64>(1, fault.arenaBudgetBytes);
      break;
    default:
      return;
  }
  stream.launcher().setFaultPlan(plan);
  statChaosInjected_.fetch_add(1, std::memory_order_relaxed);
  instruments_.chaosInjected->add(1);
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->instant("service.chaos.inject",
                   {telemetry::TraceArg::str("mode",
                                             chaosModeName(fault.mode))});
  }
}

void CompressionService::requeueSolo(std::shared_ptr<detail::Job> job) {
  detail::Phase expected = detail::Phase::Running;
  if (!job->phase.compare_exchange_strong(expected,
                                          detail::Phase::Queued)) {
    // The watchdog already requeued this job (its twin owns the retry),
    // or the twin finished and published — either way nothing to do.
    return;
  }
  requeueOrAbandon(std::move(job));
}

void CompressionService::requeueOrAbandon(
    std::shared_ptr<detail::Job> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!requeuesAbandon_) {
      job->soloOnly = true;
      lanes_.push(std::move(job));
      workCv_.notify_one();
      return;
    }
  }
  // The shutdown drain already swept the lanes; a late requeue must not
  // re-enter them (it would either hang past the deadline contract or
  // silently re-run abandoned work). Resolve it like the drain would
  // have — commit() still arbitrates against a concurrently-finishing
  // twin, so nothing double-publishes.
  JobResult r;
  r.outcome = Outcome::Abandoned;
  r.error = "abandoned: requeued after the shutdown drain";
  r.tenant = job->tenant;
  r.kind = job->kind;
  r.jobId = job->id;
  finishJob(*job, std::move(r), /*abandoned=*/true);
}

void CompressionService::backoffSleep(u64 jobId, u32 attempt) const {
  const u64 base = config_.retry.backoffBaseMillis;
  if (base == 0) return;
  const u32 shift = std::min<u32>(attempt > 0 ? attempt - 1 : 0, 20);
  const u64 capped = std::min<u64>(base << shift,
                                   std::max<u64>(1, config_.retry.backoffCapMillis));
  // Full jitter, deterministic per (seed, job, attempt): decorrelates
  // retry storms without sacrificing reproducibility.
  Rng rng(SplitMix64(config_.retry.jitterSeed ^
                     (jobId * 0x9E3779B97F4A7C15ull) ^ attempt)
              .next());
  const u64 millis = 1 + rng.uniformInt(capped);
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

std::chrono::milliseconds CompressionService::jobTimeout(
    const detail::Job& job, const gpusim::DeviceSpec& device) const {
  // Modelled execution estimate: launch overhead plus ~3 sweeps of the
  // input over modelled DRAM bandwidth (read + quantize/write + pack).
  // The multiplier absorbs the host-simulation slowdown. The cluster's
  // placement/steal heuristics rank shards with the same estimate.
  const f64 modelledSeconds =
      gpusim::modelledPassSeconds(job.input.size(), device);
  const f64 millis =
      std::max(static_cast<f64>(config_.watchdog.minTimeoutMillis),
               modelledSeconds * 1e3 * config_.watchdog.modelledMultiplier);
  return std::chrono::milliseconds(static_cast<i64>(millis) + 1);
}

void CompressionService::watchdogWatch(
    const std::vector<std::shared_ptr<detail::Job>>& batch,
    std::chrono::steady_clock::time_point dispatched,
    const gpusim::DeviceSpec& device) {
  std::lock_guard<std::mutex> lock(watchdogMutex_);
  for (const std::shared_ptr<detail::Job>& job : batch) {
    inFlight_[job->id] = InFlight{job, dispatched + jobTimeout(*job, device)};
  }
}

void CompressionService::watchdogForget(u64 jobId) {
  std::lock_guard<std::mutex> lock(watchdogMutex_);
  inFlight_.erase(jobId);
}

void CompressionService::watchdogLoop() {
  for (;;) {
    std::vector<std::shared_ptr<detail::Job>> expired;
    {
      std::unique_lock<std::mutex> lock(watchdogMutex_);
      watchdogCv_.wait_for(
          lock, std::chrono::milliseconds(config_.watchdog.pollMillis));
      if (watchdogStop_) return;
      // Stand down once shutdown begins: the drain already guarantees
      // every in-flight execution completes, and spawning twins during
      // the drain would race it.
      if (!accepting_.load(std::memory_order_acquire)) continue;
      const auto now = std::chrono::steady_clock::now();
      for (auto it = inFlight_.begin(); it != inFlight_.end();) {
        detail::Job& job = *it->second.job;
        if (job.phase.load(std::memory_order_acquire) !=
            detail::Phase::Running) {
          it = inFlight_.erase(it);  // finished or requeued; stale entry
          continue;
        }
        if (now >= it->second.deadline &&
            job.recoveries.load(std::memory_order_relaxed) <
                config_.watchdog.maxRecoveries) {
          expired.push_back(std::move(it->second.job));
          it = inFlight_.erase(it);
          continue;
        }
        ++it;
      }
    }
    for (std::shared_ptr<detail::Job>& job : expired) {
      // Requeue the hung job; whichever worker frees up first (usually a
      // different one — the hung worker is busy by definition) relaunches
      // it, and Job::commit arbitrates between the two executions.
      detail::Phase expected = detail::Phase::Running;
      if (!job->phase.compare_exchange_strong(expected,
                                              detail::Phase::Queued)) {
        continue;  // finished in the meantime
      }
      job->recoveries.fetch_add(1, std::memory_order_relaxed);
      statWatchdogRecoveries_.fetch_add(1, std::memory_order_relaxed);
      instruments_.watchdogRecoveries->add(1);
      if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
        trace->instant(
            "service.watchdog.recovery",
            {telemetry::TraceArg::str("tenant", job->tenant),
             telemetry::TraceArg::num("job_id",
                                      static_cast<f64>(job->id))});
      }
      requeueOrAbandon(std::move(job));
    }
  }
}

bool CompressionService::breakerAdmits(const std::string& tenant,
                                       std::string* detail) {
  if (config_.breaker.threshold == 0) return true;
  std::lock_guard<std::mutex> lock(breakerMutex_);
  auto it = breakers_.find(tenant);
  if (it == breakers_.end()) return true;
  Breaker& breaker = it->second;
  const auto now = std::chrono::steady_clock::now();
  const auto cooldown =
      std::chrono::milliseconds(config_.breaker.cooldownMillis);
  if (breaker.state == BreakerState::Open) {
    if (now < breaker.reopenAt) {
      *detail = "circuit open for tenant '" + tenant +
                "' (consecutive failures reached " +
                std::to_string(config_.breaker.threshold) + ")";
      return false;
    }
    setBreakerState(tenant, breaker, BreakerState::HalfOpen);
    breaker.probeSuccesses = 0;
    breaker.nextProbeAt = now;
  }
  if (breaker.state == BreakerState::HalfOpen) {
    if (now < breaker.nextProbeAt) {
      *detail = "circuit half-open for tenant '" + tenant +
                "': probe window already used";
      return false;
    }
    breaker.nextProbeAt = now + cooldown;  // one probe per window
  }
  return true;
}

void CompressionService::recordBreakerOutcome(const std::string& tenant,
                                              bool success) {
  if (config_.breaker.threshold == 0) return;
  std::lock_guard<std::mutex> lock(breakerMutex_);
  Breaker& breaker = breakers_[tenant];
  const auto now = std::chrono::steady_clock::now();
  const auto cooldown =
      std::chrono::milliseconds(config_.breaker.cooldownMillis);
  if (success) {
    breaker.consecutiveFailures = 0;
    if (breaker.state == BreakerState::HalfOpen &&
        ++breaker.probeSuccesses >= config_.breaker.probeSuccesses) {
      setBreakerState(tenant, breaker, BreakerState::Closed);
    }
    // An Open breaker seeing a success is a straggler from before the
    // trip; it stays open until the cooldown admits a real probe.
    return;
  }
  if (breaker.state == BreakerState::HalfOpen) {
    // Failed probe: straight back to Open for another cooldown.
    setBreakerState(tenant, breaker, BreakerState::Open);
    breaker.reopenAt = now + cooldown;
    breaker.consecutiveFailures = config_.breaker.threshold;
    statBreakerOpens_.fetch_add(1, std::memory_order_relaxed);
    instruments_.breakerOpens->add(1);
  } else if (breaker.state == BreakerState::Closed &&
             ++breaker.consecutiveFailures >= config_.breaker.threshold) {
    setBreakerState(tenant, breaker, BreakerState::Open);
    breaker.reopenAt = now + cooldown;
    statBreakerOpens_.fetch_add(1, std::memory_order_relaxed);
    instruments_.breakerOpens->add(1);
  }
  // Failures reported while Open are stragglers; they extend nothing.
}

void CompressionService::setBreakerState(const std::string& tenant,
                                         Breaker& breaker,
                                         BreakerState state) {
  breaker.state = state;
  telemetry::MetricsRegistry& reg = telemetry::registry();
  if (reg.enabled()) {
    reg.gauge("service.breaker." + tenant + ".state")
        .set(static_cast<f64>(static_cast<u8>(state)));
  }
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->instant("service.breaker.transition",
                   {telemetry::TraceArg::str("tenant", tenant),
                    telemetry::TraceArg::str("state", toString(state))});
  }
}

BreakerState CompressionService::breakerState(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(breakerMutex_);
  auto it = breakers_.find(tenant);
  return it == breakers_.end() ? BreakerState::Closed : it->second.state;
}

}  // namespace cuszp2::service
