// Job-level types of the in-process compression service: what a client
// submits, what it gets back, and the async Ticket handle connecting the
// two. The scheduler internals live in queue.hpp; the service itself in
// service.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/stream.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::service {

/// Operation a job performs.
enum class JobKind : u8 { Compress = 0, Decompress = 1 };

constexpr const char* toString(JobKind k) {
  return k == JobKind::Compress ? "compress" : "decompress";
}

/// Why admission control refused a submission (load shedding — the service
/// never blocks the submitting thread).
enum class RejectReason : u8 {
  /// The admitted-but-unfinished job count is at ServiceConfig::maxQueueDepth.
  QueueFull = 0,
  /// The tenant's outstanding input bytes would exceed its quota.
  QuotaExceeded = 1,
  /// shutdown() has been called; the service no longer accepts work.
  ShuttingDown = 2,
  /// The tenant's circuit breaker is open (too many consecutive failures);
  /// only this tenant is shed, and only until the breaker's cooldown
  /// admits a half-open probe.
  CircuitOpen = 3,
};

constexpr const char* toString(RejectReason r) {
  switch (r) {
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::QuotaExceeded: return "quota-exceeded";
    case RejectReason::CircuitOpen: return "circuit-open";
    default: return "shutting-down";
  }
}

/// Typed terminal state of a job. Every accepted ticket resolves with
/// exactly one of these (JobResult::outcome) — distinguishing a codec
/// failure from shutdown abandonment, a client cancel, or a salvaged
/// (degraded) decode.
enum class Outcome : u8 {
  /// Ran to completion; outputs are byte-identical to a serial stream call.
  Completed = 0,
  /// Every retry attempt failed; JobResult::error holds the last cause.
  Failed = 1,
  /// Ticket::cancel() won the race against dispatch.
  Canceled = 2,
  /// Still queued when the shutdown(deadline) drain expired; never ran.
  Abandoned = 3,
  /// Decompress retries exhausted, but decompressResilient salvaged the
  /// stream: JobResult::decompressed holds best-effort output and
  /// JobResult::decodeReport says which blocks were quarantined.
  Degraded = 4,
};

constexpr const char* toString(Outcome o) {
  switch (o) {
    case Outcome::Completed: return "completed";
    case Outcome::Failed: return "failed";
    case Outcome::Canceled: return "canceled";
    case Outcome::Abandoned: return "abandoned";
    default: return "degraded";
  }
}

/// Completed (or failed / canceled) outcome of one job. Every accepted
/// ticket eventually carries exactly one of these — jobs abandoned by a
/// shutdown deadline complete with ok == false rather than hanging.
struct JobResult {
  /// Typed terminal state; `ok`/`canceled` below are redundant shorthands
  /// kept for callers that only care about success.
  Outcome outcome = Outcome::Failed;
  bool ok = false;  ///< outcome == Completed
  /// True when Ticket::cancel() won the race against dispatch.
  bool canceled = false;
  /// Failure description when !ok (codec Error, shutdown abandonment, ...).
  std::string error;

  /// Degraded decompress only: per-block salvage verdicts from the
  /// decompressResilient fallback (which blocks were quarantined and why).
  core::DecodeReport decodeReport;

  /// Dispatch attempts this job consumed (1 = first try succeeded;
  /// 0 = never dispatched, i.e. canceled or abandoned).
  u32 attempts = 0;
  /// Times the watchdog recovered this job off a hung worker.
  u32 recoveries = 0;

  /// Compress jobs: the compressed stream + profile, byte-identical to a
  /// serial core::CompressorStream::compress with the same Config.
  core::Compressed compressed;

  /// Decompress jobs: the reconstructed elements as raw little-endian
  /// bytes (decodedElements of Precision-sized values), plus the decode's
  /// modelled kernel profile (compress jobs carry theirs inside
  /// `compressed.profile`).
  std::vector<std::byte> decompressed;
  u64 decodedElements = 0;
  core::KernelProfile decompressProfile;

  std::string tenant;
  JobKind kind = JobKind::Compress;
  u64 jobId = 0;

  /// Global dispatch ordinal (1-based): the order the scheduler started
  /// jobs. Per tenant these are strictly increasing in submission order —
  /// the FIFO-lane guarantee tests assert.
  u64 dispatchSeq = 0;
  /// Jobs coalesced into the fused launch that served this job (1 = ran
  /// alone).
  u32 batchJobs = 0;
  /// Worker index and its device-affine placement.
  u32 worker = 0;
  std::string device;

  f64 waitUs = 0.0;     ///< submission -> dispatch
  f64 serviceUs = 0.0;  ///< dispatch -> completion
};

namespace detail {

/// Lifecycle of a job. Queued -> Running -> Done is the normal path;
/// cancel() moves Queued -> Canceled (jobs already Running cannot be
/// canceled), and recovery paths (service retry, watchdog relaunch) move
/// Running -> Queued again. Because a watchdog-recovered job can briefly
/// have two executions in flight, phase CASes alone are NOT exactly-once;
/// result publication (Job::commit) is the single arbiter of who owns
/// the admission-ledger release.
enum class Phase : u8 { Queued = 0, Running = 1, Done = 2, Canceled = 3 };

/// Admission bookkeeping shared between the service and every outstanding
/// ticket (shared_ptr: tickets may outlive the service). depth counts
/// admitted-but-unfinished jobs; tenantBytes the outstanding input bytes
/// per tenant. cv signals every release so shutdown() can wait for drain.
struct Ledger {
  std::mutex mutex;
  std::condition_variable cv;
  usize depth = 0;
  std::map<std::string, u64> tenantBytes;
  /// service.queue_depth gauge; set by the owning service so cancels (which
  /// go through the ledger, not the service) keep the gauge honest.
  telemetry::Gauge* depthGauge = nullptr;

  void release(const std::string& tenant, u64 bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      depth -= 1;
      if (depthGauge != nullptr) depthGauge->set(static_cast<f64>(depth));
      auto it = tenantBytes.find(tenant);
      if (it != tenantBytes.end()) {
        it->second -= std::min(it->second, bytes);
        if (it->second == 0) tenantBytes.erase(it);
      }
    }
    cv.notify_all();
  }
};

/// One queued unit of work plus its completion channel. Owned jointly by
/// the tenant lane (until dispatch) and the client's Ticket.
struct Job {
  u64 id = 0;
  std::string tenant;
  JobKind kind = JobKind::Compress;
  Precision precision = Precision::F32;
  u8 priority = 0;
  core::Config config;
  /// Compress: raw element bytes; Decompress: the compressed stream.
  std::vector<std::byte> input;
  std::chrono::steady_clock::time_point submitted;
  std::shared_ptr<Ledger> ledger;
  /// Global dispatch ordinal, assigned under the scheduler mutex when the
  /// job leaves its lane (copied into JobResult::dispatchSeq).
  u64 dispatchSeq = 0;

  std::atomic<Phase> phase{Phase::Queued};
  /// Dispatch attempts started (incremented as a batch begins executing).
  std::atomic<u32> attempt{0};
  /// Watchdog recoveries performed on this job.
  std::atomic<u32> recoveries{0};
  /// Set (under the scheduler mutex) when a failed or recovered job is
  /// requeued: it must run alone, so one poisoned job cannot re-fail a
  /// whole batch on its retry.
  bool soloOnly = false;

  std::mutex mutex;
  std::condition_variable cv;
  bool finished = false;  // under mutex; result is valid once true
  JobResult result;

  /// Durable-intake hook (set by a journaled service at accept time):
  /// the commit winner — finishJob OR a winning Ticket::cancel — calls
  /// it exactly once to append the job's Resolve record. Best-effort by
  /// contract (the hook swallows journal errors): a lost resolve only
  /// re-executes the job at the next recovery.
  std::function<void(u64 jobId, Outcome outcome)> durableResolve;

  /// True when two jobs can share one fused launch (compressBatch or
  /// decompressBatchRaw): same operation, element type, and codec
  /// configuration. Per-field error bounds, headers and payloads are
  /// derived independently inside the batch, so coalescing never changes
  /// a job's output bytes.
  bool batchableWith(const Job& o) const {
    return kind == o.kind && !soloOnly && !o.soloOnly &&
           precision == o.precision && config == o.config;
  }

  /// Commits the result; returns true iff this call won (first
  /// publication). A watchdog-recovered job can race its own relaunched
  /// twin (or a concurrent cancel) here — the loser's result is
  /// discarded, and ONLY the winner releases the admission-ledger slot.
  /// This is the exactly-once commit point of a job. Does NOT wake
  /// waiters: the winner finishes its accounting (stats, circuit
  /// breaker, ledger release) first and then calls notifyWaiters(), so a
  /// client returning from Ticket::wait() always observes the service
  /// state this result implies.
  bool commit(JobResult r) {
    std::lock_guard<std::mutex> lock(mutex);
    if (finished) return false;
    result = std::move(r);
    finished = true;
    return true;
  }

  void notifyWaiters() { cv.notify_all(); }
};

}  // namespace detail

/// Async handle to one submitted job. Copyable and cheap (shared_ptr);
/// safe to wait on after the service has shut down or been destroyed.
class Ticket {
 public:
  Ticket() = default;

  bool valid() const { return job_ != nullptr; }
  u64 id() const { return job_ == nullptr ? 0 : job_->id; }

  /// True once the result is available (completed, failed, canceled or
  /// abandoned). Never blocks.
  bool poll() const {
    if (job_ == nullptr) return false;
    std::lock_guard<std::mutex> lock(job_->mutex);
    return job_->finished;
  }

  /// Blocks until the result is available and returns it. The reference
  /// stays valid for the ticket's lifetime.
  const JobResult& wait() const {
    require(job_ != nullptr, "Ticket::wait: invalid (rejected?) ticket");
    std::unique_lock<std::mutex> lock(job_->mutex);
    job_->cv.wait(lock, [&] { return job_->finished; });
    return job_->result;
  }

  /// Bounded wait; true when the result became available in time.
  bool waitFor(std::chrono::milliseconds timeout) const {
    require(job_ != nullptr, "Ticket::waitFor: invalid (rejected?) ticket");
    std::unique_lock<std::mutex> lock(job_->mutex);
    return job_->cv.wait_for(lock, timeout,
                             [&] { return job_->finished; });
  }

  /// Result accessor once poll()/wait() reported completion.
  const JobResult& result() const {
    require(job_ != nullptr, "Ticket::result: invalid (rejected?) ticket");
    std::lock_guard<std::mutex> lock(job_->mutex);
    require(job_->finished, "Ticket::result: job has not finished");
    return job_->result;
  }

  /// Attempts to cancel before dispatch. On success the ticket completes
  /// immediately with outcome == Canceled and the job's queue-depth and
  /// quota reservations are released at the cancel commit point (winning
  /// the result publication) — never deferred, so a canceled job can't
  /// linger in its tenant's outstanding-byte quota. Returns false when
  /// the job is already running or finished (it will complete normally).
  bool cancel() {
    if (job_ == nullptr) return false;
    detail::Phase expected = detail::Phase::Queued;
    if (!job_->phase.compare_exchange_strong(expected,
                                             detail::Phase::Canceled)) {
      return false;
    }
    JobResult r;
    r.outcome = Outcome::Canceled;
    r.canceled = true;
    r.error = "canceled before dispatch";
    r.tenant = job_->tenant;
    r.kind = job_->kind;
    r.jobId = job_->id;
    // The CAS alone is not the commit: a watchdog-recovered job can be
    // Queued again while its first execution is still in flight, so the
    // cancel can race that execution's completion. commit() arbitrates;
    // whoever wins owns the ledger release — done before waking waiters
    // so the freed quota is visible as soon as the cancel is observable.
    if (!job_->commit(std::move(r))) return false;
    // A canceled job is resolved: record it so a restart won't replay
    // it. Safe lifetime-wise — a cancel can only win while the service
    // is alive (shutdown commits every job before returning).
    if (job_->durableResolve) {
      job_->durableResolve(job_->id, Outcome::Canceled);
    }
    job_->ledger->release(job_->tenant, job_->input.size());
    job_->notifyWaiters();
    return true;
  }

 private:
  friend class CompressionService;
  explicit Ticket(std::shared_ptr<detail::Job> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::Job> job_;
};

/// Outcome of a submit call: an accepted ticket, or a typed rejection.
struct SubmitResult {
  Ticket ticket;
  RejectReason reason = RejectReason::QueueFull;  // meaningful iff rejected
  std::string detail;

  bool accepted() const { return ticket.valid(); }
};

}  // namespace cuszp2::service
