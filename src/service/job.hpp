// Job-level types of the in-process compression service: what a client
// submits, what it gets back, and the async Ticket handle connecting the
// two. The scheduler internals live in queue.hpp; the service itself in
// service.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/stream.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::service {

/// Operation a job performs.
enum class JobKind : u8 { Compress = 0, Decompress = 1 };

constexpr const char* toString(JobKind k) {
  return k == JobKind::Compress ? "compress" : "decompress";
}

/// Why admission control refused a submission (load shedding — the service
/// never blocks the submitting thread).
enum class RejectReason : u8 {
  /// The admitted-but-unfinished job count is at ServiceConfig::maxQueueDepth.
  QueueFull = 0,
  /// The tenant's outstanding input bytes would exceed its quota.
  QuotaExceeded = 1,
  /// shutdown() has been called; the service no longer accepts work.
  ShuttingDown = 2,
};

constexpr const char* toString(RejectReason r) {
  switch (r) {
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::QuotaExceeded: return "quota-exceeded";
    default: return "shutting-down";
  }
}

/// Completed (or failed / canceled) outcome of one job. Every accepted
/// ticket eventually carries exactly one of these — jobs abandoned by a
/// shutdown deadline complete with ok == false rather than hanging.
struct JobResult {
  bool ok = false;
  /// True when Ticket::cancel() won the race against dispatch.
  bool canceled = false;
  /// Failure description when !ok (codec Error, shutdown abandonment, ...).
  std::string error;

  /// Compress jobs: the compressed stream + profile, byte-identical to a
  /// serial core::CompressorStream::compress with the same Config.
  core::Compressed compressed;

  /// Decompress jobs: the reconstructed elements as raw little-endian
  /// bytes (decodedElements of Precision-sized values).
  std::vector<std::byte> decompressed;
  u64 decodedElements = 0;

  std::string tenant;
  JobKind kind = JobKind::Compress;
  u64 jobId = 0;

  /// Global dispatch ordinal (1-based): the order the scheduler started
  /// jobs. Per tenant these are strictly increasing in submission order —
  /// the FIFO-lane guarantee tests assert.
  u64 dispatchSeq = 0;
  /// Jobs coalesced into the fused launch that served this job (1 = ran
  /// alone).
  u32 batchJobs = 0;
  /// Worker index and its device-affine placement.
  u32 worker = 0;
  std::string device;

  f64 waitUs = 0.0;     ///< submission -> dispatch
  f64 serviceUs = 0.0;  ///< dispatch -> completion
};

namespace detail {

/// Lifecycle of a job. Queued -> Running -> Done is the normal path;
/// cancel() moves Queued -> Canceled (jobs already Running cannot be
/// canceled). Exactly one CAS wins the transition out of Queued, which is
/// what makes admission-ledger release exactly-once.
enum class Phase : u8 { Queued = 0, Running = 1, Done = 2, Canceled = 3 };

/// Admission bookkeeping shared between the service and every outstanding
/// ticket (shared_ptr: tickets may outlive the service). depth counts
/// admitted-but-unfinished jobs; tenantBytes the outstanding input bytes
/// per tenant. cv signals every release so shutdown() can wait for drain.
struct Ledger {
  std::mutex mutex;
  std::condition_variable cv;
  usize depth = 0;
  std::map<std::string, u64> tenantBytes;
  /// service.queue_depth gauge; set by the owning service so cancels (which
  /// go through the ledger, not the service) keep the gauge honest.
  telemetry::Gauge* depthGauge = nullptr;

  void release(const std::string& tenant, u64 bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      depth -= 1;
      if (depthGauge != nullptr) depthGauge->set(static_cast<f64>(depth));
      auto it = tenantBytes.find(tenant);
      if (it != tenantBytes.end()) {
        it->second -= std::min(it->second, bytes);
        if (it->second == 0) tenantBytes.erase(it);
      }
    }
    cv.notify_all();
  }
};

/// One queued unit of work plus its completion channel. Owned jointly by
/// the tenant lane (until dispatch) and the client's Ticket.
struct Job {
  u64 id = 0;
  std::string tenant;
  JobKind kind = JobKind::Compress;
  Precision precision = Precision::F32;
  u8 priority = 0;
  core::Config config;
  /// Compress: raw element bytes; Decompress: the compressed stream.
  std::vector<std::byte> input;
  std::chrono::steady_clock::time_point submitted;
  std::shared_ptr<Ledger> ledger;
  /// Global dispatch ordinal, assigned under the scheduler mutex when the
  /// job leaves its lane (copied into JobResult::dispatchSeq).
  u64 dispatchSeq = 0;

  std::atomic<Phase> phase{Phase::Queued};
  std::mutex mutex;
  std::condition_variable cv;
  bool finished = false;  // under mutex; result is valid once true
  JobResult result;

  /// True when two jobs can share one fused compressBatch launch: same
  /// operation, element type, and codec configuration. Per-field error
  /// bounds, headers and payloads are derived independently inside the
  /// batch, so coalescing never changes a job's output bytes.
  bool batchableWith(const Job& o) const {
    return kind == JobKind::Compress && o.kind == JobKind::Compress &&
           precision == o.precision && config == o.config;
  }

  /// Publishes the result and wakes waiters. The ledger slot is released
  /// by the caller (exactly once per job, by whoever moved it out of
  /// Queued).
  void finish(JobResult r) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      result = std::move(r);
      finished = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// Async handle to one submitted job. Copyable and cheap (shared_ptr);
/// safe to wait on after the service has shut down or been destroyed.
class Ticket {
 public:
  Ticket() = default;

  bool valid() const { return job_ != nullptr; }
  u64 id() const { return job_ == nullptr ? 0 : job_->id; }

  /// True once the result is available (completed, failed, canceled or
  /// abandoned). Never blocks.
  bool poll() const {
    if (job_ == nullptr) return false;
    std::lock_guard<std::mutex> lock(job_->mutex);
    return job_->finished;
  }

  /// Blocks until the result is available and returns it. The reference
  /// stays valid for the ticket's lifetime.
  const JobResult& wait() const {
    require(job_ != nullptr, "Ticket::wait: invalid (rejected?) ticket");
    std::unique_lock<std::mutex> lock(job_->mutex);
    job_->cv.wait(lock, [&] { return job_->finished; });
    return job_->result;
  }

  /// Bounded wait; true when the result became available in time.
  bool waitFor(std::chrono::milliseconds timeout) const {
    require(job_ != nullptr, "Ticket::waitFor: invalid (rejected?) ticket");
    std::unique_lock<std::mutex> lock(job_->mutex);
    return job_->cv.wait_for(lock, timeout,
                             [&] { return job_->finished; });
  }

  /// Result accessor once poll()/wait() reported completion.
  const JobResult& result() const {
    require(job_ != nullptr, "Ticket::result: invalid (rejected?) ticket");
    std::lock_guard<std::mutex> lock(job_->mutex);
    require(job_->finished, "Ticket::result: job has not finished");
    return job_->result;
  }

  /// Attempts to cancel before dispatch. On success the ticket completes
  /// immediately with result().canceled == true and the job's queue-depth
  /// and quota reservations are released; returns false when the job is
  /// already running or finished (it will complete normally).
  bool cancel() {
    if (job_ == nullptr) return false;
    detail::Phase expected = detail::Phase::Queued;
    if (!job_->phase.compare_exchange_strong(expected,
                                             detail::Phase::Canceled)) {
      return false;
    }
    JobResult r;
    r.canceled = true;
    r.error = "canceled before dispatch";
    r.tenant = job_->tenant;
    r.kind = job_->kind;
    r.jobId = job_->id;
    job_->finish(std::move(r));
    job_->ledger->release(job_->tenant, job_->input.size());
    return true;
  }

 private:
  friend class CompressionService;
  explicit Ticket(std::shared_ptr<detail::Job> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::Job> job_;
};

/// Outcome of a submit call: an accepted ticket, or a typed rejection.
struct SubmitResult {
  Ticket ticket;
  RejectReason reason = RejectReason::QueueFull;  // meaningful iff rejected
  std::string detail;

  bool accepted() const { return ticket.valid(); }
};

}  // namespace cuszp2::service
