#include "service/queue.hpp"

#include <algorithm>

namespace cuszp2::service::detail {

TenantLanes::Lane* TenantLanes::laneFor(const std::string& tenant) {
  for (Lane& lane : lanes_) {
    if (lane.tenant == tenant) return &lane;
  }
  lanes_.push_back(Lane{tenant, {}});
  return &lanes_.back();
}

void TenantLanes::push(std::shared_ptr<Job> job) {
  laneFor(job->tenant)->jobs.push_back(std::move(job));
  ++entries_;
}

void TenantLanes::reapFront(std::deque<std::shared_ptr<Job>>& lane) {
  // Canceled jobs are the classic tombstone; Done jobs appear when a
  // watchdog-recovered job was requeued and its original execution then
  // finished first — the queued copy must be dropped, or entries_ never
  // drains and the workers busy-wake forever.
  for (;;) {
    if (lane.empty()) break;
    const Phase p = lane.front()->phase.load(std::memory_order_acquire);
    if (p != Phase::Canceled && p != Phase::Done) break;
    lane.pop_front();
    --entries_;
  }
}

std::shared_ptr<Job> TenantLanes::pop() {
  if (lanes_.empty()) return nullptr;
  for (;;) {
    // Best (lowest) priority among lane heads, reaping tombstones.
    bool any = false;
    u8 best = 255;
    for (Lane& lane : lanes_) {
      reapFront(lane.jobs);
      if (lane.jobs.empty()) continue;
      any = true;
      best = std::min(best, lane.jobs.front()->priority);
    }
    if (!any) return nullptr;

    // Round-robin among the lanes whose head carries the best priority.
    for (usize step = 0; step < lanes_.size(); ++step) {
      Lane& lane = lanes_[(cursor_ + step) % lanes_.size()];
      if (lane.jobs.empty() || lane.jobs.front()->priority != best) {
        continue;
      }
      std::shared_ptr<Job> job = lane.jobs.front();
      lane.jobs.pop_front();
      --entries_;
      cursor_ = ((cursor_ + step) % lanes_.size() + 1) % lanes_.size();
      Phase expected = Phase::Queued;
      if (job->phase.compare_exchange_strong(expected, Phase::Running)) {
        return job;
      }
      // Lost the race to a concurrent cancel: rescan from scratch (the
      // head priorities may have changed).
      break;
    }
  }
}

void TenantLanes::popBatch(const Job& head,
                           std::vector<std::shared_ptr<Job>>& batch,
                           usize maxExtraJobs, u64 maxBatchBytes) {
  if (lanes_.empty() || maxExtraJobs == 0) return;
  u64 batchBytes = head.input.size();
  usize taken = 0;
  for (usize step = 0; step < lanes_.size() && taken < maxExtraJobs;
       ++step) {
    Lane& lane = lanes_[(cursor_ + step) % lanes_.size()];
    // Longest batchable prefix of this lane; stopping at the first
    // incompatible job keeps the lane's FIFO order intact.
    for (;;) {
      reapFront(lane.jobs);
      if (lane.jobs.empty() || taken >= maxExtraJobs) break;
      const std::shared_ptr<Job>& front = lane.jobs.front();
      if (!head.batchableWith(*front)) break;
      if (batchBytes + front->input.size() > maxBatchBytes) break;
      std::shared_ptr<Job> job = front;
      lane.jobs.pop_front();
      --entries_;
      Phase expected = Phase::Queued;
      if (!job->phase.compare_exchange_strong(expected, Phase::Running)) {
        continue;  // canceled under us: tombstone, keep scanning the lane
      }
      batchBytes += job->input.size();
      ++taken;
      batch.push_back(std::move(job));
    }
  }
}

std::vector<std::shared_ptr<Job>> TenantLanes::drain() {
  std::vector<std::shared_ptr<Job>> out;
  for (Lane& lane : lanes_) {
    for (std::shared_ptr<Job>& job : lane.jobs) {
      --entries_;
      Phase expected = Phase::Queued;
      if (job->phase.compare_exchange_strong(expected, Phase::Running)) {
        out.push_back(std::move(job));
      }
    }
    lane.jobs.clear();
  }
  return out;
}

}  // namespace cuszp2::service::detail
