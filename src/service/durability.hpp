// Durable service intake: the job-journal wire records that let a
// restarted CompressionService replay accepted-but-incomplete jobs
// exactly-once (docs/DURABILITY.md).
//
// Record kinds (io::JournalWriter framing carries the type + CRC):
//   * Accept  — the full submission (id, tenant, kind, precision,
//     priority, core::Config, input bytes). Appended + synced BEFORE
//     submit() returns its ticket, so an accepted ticket implies a
//     durable record. `supersedesId` links a replayed resubmission to
//     the job it replaces: the new accept retires the old id in the
//     same record, so a crash can never leave both pending (the
//     double-replay hazard).
//   * Resolve — (id, Outcome). Appended when the job's result commits —
//     any Outcome, so the taxonomy survives a restart. Best-effort: a
//     lost resolve only causes one benign re-execution at the next
//     recovery.
//
// Recovery = accepts minus resolves (deduped by id, supersede links
// honored), resubmitted in original id order.
#pragma once

#include <vector>

#include "io/journal.hpp"
#include "service/job.hpp"

namespace cuszp2::service {

constexpr u32 kJobRecordAccept = 1;
constexpr u32 kJobRecordResolve = 2;

/// Stamped into the journal header; a mismatch means the file is not a
/// service job journal (unrecoverable — same contract as the CAS tag).
constexpr u64 kJobJournalOwnerTag = 0x53424f4a32505a43ull;  // "CZP2JOBS"

struct JobAcceptRecord {
  u64 jobId = 0;
  /// Previous-life job id this resubmission replaces (0 = none). Marks
  /// that id resolved even when its Resolve record never made it out.
  u64 supersedesId = 0;
  std::string tenant;
  JobKind kind = JobKind::Compress;
  Precision precision = Precision::F32;
  u8 priority = 0;
  core::Config config;
  std::vector<std::byte> input;
};

struct JobResolveRecord {
  u64 jobId = 0;
  Outcome outcome = Outcome::Failed;
};

std::vector<std::byte> encodeJobAccept(const JobAcceptRecord& rec);
JobAcceptRecord decodeJobAccept(ConstByteSpan payload);

std::vector<std::byte> encodeJobResolve(u64 jobId, Outcome outcome);
JobResolveRecord decodeJobResolve(ConstByteSpan payload);

/// Digest of one replayed job journal: the accepted-but-unresolved jobs
/// in original id order, plus accounting for the health line.
struct JobJournalSummary {
  std::vector<JobAcceptRecord> pending;
  u64 accepts = 0;
  u64 resolves = 0;
  /// Resolved-outcome tally, indexed by static_cast<usize>(Outcome).
  u64 outcomes[5] = {0, 0, 0, 0, 0};
};

/// Folds a replayed journal into its pending set. Throws cuszp2::Error
/// on a malformed record or an unknown record type.
JobJournalSummary summarizeJobJournal(const io::ReplayResult& replay);

}  // namespace cuszp2::service
