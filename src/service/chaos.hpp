// Seeded chaos schedule for service fault drills: a pure function
// (seed, jobId, attempt) -> ChaosFault, so the same seed reproduces the
// exact same fault injections — and therefore the same recovery counters
// — across runs. Used by tools/chaos_soak and `cuszp2 serve --chaos-seed`.
#pragma once

#include <string>

#include "service/service.hpp"

namespace cuszp2::service {

/// Knobs of a SeededChaosSchedule. Rates are per dispatch attempt and
/// must sum to <= 1; the remainder is the fault-free probability.
struct ChaosConfig {
  u64 seed = 1;

  f64 bitFlipRate = 0.15;  ///< corrupt the kernel's written bytes
  f64 abortRate = 0.15;    ///< a thread block throws mid-launch
  f64 stallRate = 0.05;    ///< the launch hangs before any block runs
  f64 wedgeRate = 0.05;    ///< a pool worker stops draining mid-grid
  f64 arenaRate = 0.05;    ///< the scratch arena refuses to grow

  u32 bitFlips = 8;             ///< flips per BitFlip fault
  u32 stallTicks = 400;         ///< 1 tick = 1 ms of injected stall
  u32 wedgeTicks = 400;
  /// Below one aligned arena span, so even the smallest operation's first
  /// scratch allocation throws (tiny decompresses use < 256 arena bytes).
  u64 arenaBudgetBytes = 1;

  /// Dispatch attempts eligible for faults (1 = only the first attempt,
  /// so retries always run clean and every job eventually resolves).
  u32 faultedAttempts = 1;

  /// Tenant never injected against (a soak's poison tenant carries its
  /// own pre-corrupted payloads; faulting it too would blur the breaker
  /// assertion).
  std::string exemptTenant;
};

/// Deterministic per-attempt fault decisions. Copyable by value; the
/// hook() adapter captures a copy, so the schedule may go out of scope.
class SeededChaosSchedule {
 public:
  explicit SeededChaosSchedule(ChaosConfig config = {});

  /// Pure decision for one dispatch attempt. Identical inputs always
  /// yield the identical fault (mode, parameters, and FaultPlan seed).
  ChaosFault decide(const ChaosJobInfo& info) const;

  /// Adapter binding decide() as a ServiceConfig::chaosHook (copies this
  /// schedule by value).
  ChaosHook hook() const;

  const ChaosConfig& config() const { return config_; }

 private:
  ChaosConfig config_;
};

}  // namespace cuszp2::service
