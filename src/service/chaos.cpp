#include "service/chaos.hpp"

#include "common/rng.hpp"

namespace cuszp2::service {

SeededChaosSchedule::SeededChaosSchedule(ChaosConfig config)
    : config_(config) {
  const f64 sum = config_.bitFlipRate + config_.abortRate +
                  config_.stallRate + config_.wedgeRate + config_.arenaRate;
  require(config_.bitFlipRate >= 0 && config_.abortRate >= 0 &&
              config_.stallRate >= 0 && config_.wedgeRate >= 0 &&
              config_.arenaRate >= 0 && sum <= 1.0 + 1e-9,
          "SeededChaosSchedule: fault rates must be >= 0 and sum to <= 1");
}

ChaosFault SeededChaosSchedule::decide(const ChaosJobInfo& info) const {
  ChaosFault fault;
  if (info.attempt >= config_.faultedAttempts) return fault;
  if (!config_.exemptTenant.empty() &&
      info.tenant == config_.exemptTenant) {
    return fault;
  }

  // Whiten (seed, jobId, attempt) into an independent per-attempt stream;
  // Golden-ratio multiply decorrelates consecutive job ids.
  SplitMix64 mix(config_.seed ^ (info.jobId * 0x9E3779B97F4A7C15ull) ^
                 (u64{info.attempt} << 32));
  Rng rng(mix.next());
  const f64 u = rng.uniform();

  f64 edge = config_.bitFlipRate;
  if (u < edge) {
    fault.mode = ChaosFault::Mode::BitFlip;
    fault.bitFlips = config_.bitFlips;
  } else if (u < (edge += config_.abortRate)) {
    fault.mode = ChaosFault::Mode::Abort;
  } else if (u < (edge += config_.stallRate)) {
    fault.mode = ChaosFault::Mode::Stall;
    fault.stallTicks = config_.stallTicks;
  } else if (u < (edge += config_.wedgeRate)) {
    fault.mode = ChaosFault::Mode::Wedge;
    fault.wedgeTicks = config_.wedgeTicks;
  } else if (u < (edge += config_.arenaRate)) {
    fault.mode = ChaosFault::Mode::ArenaExhaust;
    fault.arenaBudgetBytes = config_.arenaBudgetBytes;
  } else {
    return fault;  // clean attempt
  }
  fault.seed = mix.next();  // bit-flip positions etc., also deterministic
  return fault;
}

ChaosHook SeededChaosSchedule::hook() const {
  return [schedule = *this](const ChaosJobInfo& info) {
    return schedule.decide(info);
  };
}

}  // namespace cuszp2::service
