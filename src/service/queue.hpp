// Tenant-lane job queue of the compression service: one FIFO deque per
// tenant, a priority-then-round-robin scheduling pick, and batch
// coalescing that only ever removes lane *prefixes* so per-tenant FIFO
// order survives batching.
//
// Not thread-safe by itself — the owning CompressionService serializes all
// access under its scheduler mutex. Canceled jobs — and Done jobs whose
// queued copy was orphaned by a watchdog recovery racing the original
// execution — stay in their lane as tombstones and are reaped lazily as
// the scheduler walks over them.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "service/job.hpp"

namespace cuszp2::service::detail {

class TenantLanes {
 public:
  /// Appends to the back of the tenant's lane (creating the lane on first
  /// use; round-robin order is tenant first-seen order).
  void push(std::shared_ptr<Job> job);

  /// Scheduler pick: among non-empty lanes, take the head with the
  /// numerically lowest priority value; ties broken round-robin across
  /// tenants (the cursor advances past the chosen lane, so a hot tenant
  /// cannot starve the others at equal priority). The returned job has
  /// been transitioned Queued -> Running. Returns nullptr when nothing
  /// runnable remains (tombstones are reaped along the way).
  std::shared_ptr<Job> pop();

  /// Coalesces up to `maxExtraJobs` additional jobs compatible with `head`
  /// (Job::batchableWith) into `batch`, bounded by `maxBatchBytes` of
  /// total input (head included). Only lane prefixes are taken, scanning
  /// tenants in round-robin order, so each tenant's FIFO order is
  /// preserved. Appended jobs are transitioned Queued -> Running.
  void popBatch(const Job& head, std::vector<std::shared_ptr<Job>>& batch,
                usize maxExtraJobs, u64 maxBatchBytes);

  /// Removes and returns every queued job (shutdown drain). Tombstones are
  /// dropped; returned jobs are transitioned Queued -> Running so the
  /// caller owns their completion.
  std::vector<std::shared_ptr<Job>> drain();

  /// Queued entries including not-yet-reaped tombstones. A worker woken on
  /// a tombstone-only queue pops nothing and goes back to sleep; entries
  /// only ever shrink in that case, so there is no busy loop.
  usize entries() const { return entries_; }

 private:
  /// Pops tombstones off the front of `lane`.
  void reapFront(std::deque<std::shared_ptr<Job>>& lane);

  struct Lane {
    std::string tenant;
    std::deque<std::shared_ptr<Job>> jobs;
  };

  Lane* laneFor(const std::string& tenant);

  std::vector<Lane> lanes_;  // round-robin order = first-seen order
  usize cursor_ = 0;         // next lane index to prefer on a tie
  usize entries_ = 0;
};

}  // namespace cuszp2::service::detail
