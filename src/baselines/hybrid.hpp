// CPU-GPU hybrid compressor baselines (paper Fig. 2 and Table I):
// cuSZ-like, cuSZx-like, and MGARD-GPU-like pipelines whose GPU kernels are
// fast but whose end-to-end throughput collapses under PCIe transfers and
// host-side stages.
//
//   cuSZ-like : GPU Lorenzo quantization kernel -> D2H quant codes ->
//               host canonical Huffman (real codec) -> H2D compressed.
//   cuSZx-like: GPU blockwise plain-FLE kernel (single kernel) -> D2H
//               per-block chunks -> host prefix-sum + compaction -> H2D.
//   MGARD-like: GPU multilevel interpolation decomposition (one kernel per
//               level, closed-loop quantization, real algorithm) -> D2H ->
//               host Huffman -> H2D.
//
// All three compute their real compression ratio and reconstruction (the
// host stages actually run); only the *time* of GPU kernels, PCIe, and CPU
// stages is modelled, with the constants documented in hybrid.cpp.
#pragma once

#include "baselines/baseline.hpp"

namespace cuszp2::baselines {

class HybridBaseline final : public IBaseline {
 public:
  enum class Kind : u8 { CuszLike, CuszxLike, MgardLike };

  explicit HybridBaseline(Kind kind,
                          gpusim::DeviceSpec device = gpusim::a100_40gb());

  std::string name() const override;
  bool errorBounded() const override { return true; }
  RunResult run(std::span<const f32> data, f64 relErrorBound) override;

  Kind kind() const { return kind_; }

 private:
  RunResult runCusz(std::span<const f32> data, f64 absEb);
  RunResult runCuszx(std::span<const f32> data, f64 absEb);
  RunResult runMgard(std::span<const f32> data, f64 absEb);

  Kind kind_;
  gpusim::DeviceSpec device_;
};

}  // namespace cuszp2::baselines
