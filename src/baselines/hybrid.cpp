#include "baselines/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "entropy/huffman.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {

namespace {

// Host-stage throughput constants (2x AMD EPYC 7742 class node, matching
// the paper's Swing cluster platform). These convert real host work into
// modelled seconds; they are deliberately optimistic — even so the hybrids
// land orders of magnitude below pure-GPU end-to-end throughput.
constexpr f64 kCpuHuffmanGBps = 1.0;   // tree build + encode/decode
constexpr f64 kCpuCompactGBps = 2.5;   // prefix-sum + compaction pass
constexpr f64 kCpuMgardGBps = 0.40;    // multilevel reorder + Huffman

constexpr u16 kOutlierCode = 0;
constexpr i32 kCodeOffset = 32768;

struct QuantCodes {
  std::vector<u16> codes;
  std::vector<std::pair<u64, i32>> outliers;  // (index, diff) pairs

  usize outlierBytes() const { return outliers.size() * 12; }
};

/// Lorenzo (first-order) quantization to u16 codes with an outlier list —
/// the cuSZ front end.
QuantCodes lorenzoQuantize(std::span<const f32> data,
                           const core::Quantizer& quantizer) {
  QuantCodes out;
  out.codes.resize(data.size());
  i32 prev = 0;
  for (usize i = 0; i < data.size(); ++i) {
    const i32 q = quantizer.quantize(data[i]);
    const i32 d = q - prev;
    prev = q;
    if (d > -kCodeOffset + 1 && d < kCodeOffset) {
      out.codes[i] = static_cast<u16>(d + kCodeOffset);
    } else {
      out.codes[i] = kOutlierCode;
      out.outliers.emplace_back(i, d);
    }
  }
  return out;
}

std::vector<f32> lorenzoDequantize(const QuantCodes& qc,
                                   const core::Quantizer& quantizer) {
  std::vector<f32> out(qc.codes.size());
  usize nextOutlier = 0;
  i32 acc = 0;
  for (usize i = 0; i < qc.codes.size(); ++i) {
    i32 d = 0;
    if (qc.codes[i] == kOutlierCode) {
      require(nextOutlier < qc.outliers.size() &&
                  qc.outliers[nextOutlier].first == i,
              "hybrid: outlier list out of sync");
      d = qc.outliers[nextOutlier++].second;
    } else {
      d = static_cast<i32>(qc.codes[i]) - kCodeOffset;
    }
    acc += d;
    out[i] = quantizer.dequantize<f32>(acc);
  }
  return out;
}

f64 secondsAt(u64 bytes, f64 gbps) {
  return static_cast<f64>(bytes) / (gbps * 1e9);
}

}  // namespace

HybridBaseline::HybridBaseline(Kind kind, gpusim::DeviceSpec device)
    : kind_(kind), device_(std::move(device)) {}

std::string HybridBaseline::name() const {
  switch (kind_) {
    case Kind::CuszLike: return "cuSZ (hybrid)";
    case Kind::CuszxLike: return "cuSZx (hybrid)";
    case Kind::MgardLike: return "MGARD-GPU (hybrid)";
  }
  return "?";
}

RunResult HybridBaseline::run(std::span<const f32> data, f64 relErrorBound) {
  require(!data.empty(), "HybridBaseline: empty input");
  const f64 absEb = core::Quantizer::absFromRel(
      relErrorBound, metrics::valueRange(data));
  switch (kind_) {
    case Kind::CuszLike: return runCusz(data, absEb);
    case Kind::CuszxLike: return runCuszx(data, absEb);
    case Kind::MgardLike: return runMgard(data, absEb);
  }
  throw Error("HybridBaseline: unknown kind");
}

// ---- cuSZ-like ----------------------------------------------------------

RunResult HybridBaseline::runCusz(std::span<const f32> data, f64 absEb) {
  const core::Quantizer quantizer(absEb);
  const gpusim::TimingModel timing(device_);
  gpusim::Launcher launcher;
  const u64 n = data.size();
  const u64 originalBytes = n * sizeof(f32);

  // GPU kernel: Lorenzo quantization (runs for real; counters recorded).
  QuantCodes qc;
  const u32 tiles = 256;
  const auto launchQ = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
    qc = lorenzoQuantize(data, quantizer);
    ctx.mem.noteVectorRead(n * 4, device_.transactionBytes);
    ctx.mem.noteScalarWrite(n * 2, 2, device_.transactionBytes);
    ctx.mem.noteOps(n * 6);
    ctx.sync.tiles = tiles;
  });

  // Host: canonical Huffman over the quant codes (real codec).
  const auto enc = entropy::HuffmanCodec::encode(qc.codes, 65536);
  const u64 compressedBytes = enc.totalBytes() + qc.outlierBytes();

  // Time model: kernel + D2H codes + CPU Huffman + H2D compressed.
  const auto kernelTiming = timing.kernel(launchQ.mem, launchQ.sync);
  const f64 compSeconds = kernelTiming.totalSeconds +
                          timing.pcieSeconds(n * 2 + qc.outlierBytes()) +
                          secondsAt(n * 2, kCpuHuffmanGBps) +
                          timing.pcieSeconds(compressedBytes);

  // Decompression: D2H compressed -> CPU Huffman decode -> H2D codes ->
  // GPU dequantization kernel.
  const auto decodedCodes = entropy::HuffmanCodec::decode(enc);
  require(decodedCodes == qc.codes, "cuSZ hybrid: Huffman round trip failed");
  QuantCodes qcDec;
  qcDec.codes = decodedCodes;
  qcDec.outliers = qc.outliers;
  std::vector<f32> reconstructed;
  const auto launchD = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
    reconstructed = lorenzoDequantize(qcDec, quantizer);
    ctx.mem.noteScalarRead(n * 2, 2, device_.transactionBytes);
    ctx.mem.noteVectorWrite(n * 4, device_.transactionBytes);
    ctx.mem.noteOps(n * 5);
  });
  const auto decKernelTiming = timing.kernel(launchD.mem, launchD.sync);
  const f64 decSeconds = timing.pcieSeconds(compressedBytes) +
                         secondsAt(n * 2, kCpuHuffmanGBps) +
                         timing.pcieSeconds(n * 2 + qc.outlierBytes()) +
                         decKernelTiming.totalSeconds;

  RunResult r;
  r.compressor = name();
  r.ratio = static_cast<f64>(originalBytes) /
            static_cast<f64>(compressedBytes);
  r.compressGBps = gpusim::gbps(originalBytes, compSeconds);
  r.decompressGBps = gpusim::gbps(originalBytes, decSeconds);
  r.compressKernelGBps =
      gpusim::gbps(originalBytes, kernelTiming.totalSeconds);
  r.decompressKernelGBps =
      gpusim::gbps(originalBytes, decKernelTiming.totalSeconds);
  r.memThroughputGBps = kernelTiming.memThroughputGBps;
  r.error = metrics::computeErrorStats<f32>(data, reconstructed);
  r.reconstructed = std::move(reconstructed);
  return r;
}

// ---- cuSZx-like ----------------------------------------------------------

RunResult HybridBaseline::runCuszx(std::span<const f32> data, f64 absEb) {
  const core::Quantizer quantizer(absEb);
  const gpusim::TimingModel timing(device_);
  gpusim::Launcher launcher;
  const u64 n = data.size();
  const u64 originalBytes = n * sizeof(f32);

  constexpr u32 kBlockSize = 64;
  const core::BlockCodec codec(kBlockSize);
  const u64 numBlocks = (n + kBlockSize - 1) / kBlockSize;

  // GPU kernel (single kernel, like real cuSZx): quantize + plain-FLE
  // encode each block into a worst-case slot.
  std::vector<u8> offsetBytes(numBlocks, 0);
  std::vector<std::byte> slots(numBlocks * core::maxPayloadSize(kBlockSize));
  std::vector<u64> sizes(numBlocks, 0);
  const auto launchC = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
    std::vector<i32> q(kBlockSize);
    u64 payload = 0;
    for (u64 blk = 0; blk < numBlocks; ++blk) {
      const u64 eFirst = blk * kBlockSize;
      const u64 eLast = std::min<u64>(n, eFirst + kBlockSize);
      for (u64 e = eFirst; e < eLast; ++e) {
        q[e - eFirst] = quantizer.quantize(data[e]);
      }
      for (u64 e = eLast; e < eFirst + kBlockSize; ++e) {
        q[e - eFirst] = q[eLast - eFirst == 0 ? 0 : eLast - eFirst - 1];
      }
      const auto plan = codec.plan(q, EncodingMode::Plain);
      offsetBytes[blk] = plan.header.pack();
      codec.encode(q, plan,
                   slots.data() + blk * core::maxPayloadSize(kBlockSize));
      sizes[blk] = plan.payloadBytes;
      payload += plan.payloadBytes;
    }
    ctx.mem.noteScalarRead(n * 4, 4, device_.transactionBytes);
    ctx.mem.noteScalarWrite(payload + numBlocks, 4,
                            device_.transactionBytes);
    ctx.mem.noteOps(n * 10);
  });

  u64 payloadBytes = 0;
  for (u64 s : sizes) payloadBytes += s;
  const u64 compressedBytes = numBlocks + payloadBytes;

  // Host: device-level synchronization on the CPU — the worst-case slot
  // array must cross PCIe because the device never learns the compacted
  // layout, then the host prefix-sums and compacts and sends the unified
  // array back. This is the "CPU computations to perform global
  // synchronization" of Table I.
  const u64 d2hBytes =
      numBlocks + numBlocks * core::maxPayloadSize(kBlockSize);
  const auto kernelTiming = timing.kernel(launchC.mem, launchC.sync);
  const f64 compSeconds = kernelTiming.totalSeconds +
                          timing.pcieSeconds(d2hBytes) +
                          secondsAt(compressedBytes, kCpuCompactGBps) +
                          timing.pcieSeconds(compressedBytes);

  // Decompression: offsets derived on host, then a single GPU decode
  // kernel.
  std::vector<f32> reconstructed(n, 0.0f);
  const auto launchD = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
    std::vector<i32> q(kBlockSize);
    for (u64 blk = 0; blk < numBlocks; ++blk) {
      const auto h = core::BlockHeader::unpack(offsetBytes[blk]);
      codec.decode(h, slots.data() + blk * core::maxPayloadSize(kBlockSize),
                   q);
      const u64 eFirst = blk * kBlockSize;
      const u64 eLast = std::min<u64>(n, eFirst + kBlockSize);
      for (u64 e = eFirst; e < eLast; ++e) {
        reconstructed[e] = quantizer.dequantize<f32>(q[e - eFirst]);
      }
    }
    ctx.mem.noteScalarRead(compressedBytes, 4, device_.transactionBytes);
    ctx.mem.noteScalarWrite(n * 4, 4, device_.transactionBytes);
    ctx.mem.noteOps(n * 8);
  });
  const auto decKernelTiming = timing.kernel(launchD.mem, launchD.sync);
  const f64 decSeconds = timing.pcieSeconds(compressedBytes) +
                         secondsAt(compressedBytes, kCpuCompactGBps) +
                         timing.pcieSeconds(compressedBytes) +
                         decKernelTiming.totalSeconds;

  RunResult r;
  r.compressor = name();
  r.ratio = static_cast<f64>(originalBytes) /
            static_cast<f64>(compressedBytes);
  r.compressGBps = gpusim::gbps(originalBytes, compSeconds);
  r.decompressGBps = gpusim::gbps(originalBytes, decSeconds);
  r.compressKernelGBps =
      gpusim::gbps(originalBytes, kernelTiming.totalSeconds);
  r.decompressKernelGBps =
      gpusim::gbps(originalBytes, decKernelTiming.totalSeconds);
  r.memThroughputGBps = kernelTiming.memThroughputGBps;
  r.error = metrics::computeErrorStats<f32>(data, reconstructed);
  r.reconstructed = std::move(reconstructed);
  return r;
}

// ---- MGARD-like -----------------------------------------------------------

RunResult HybridBaseline::runMgard(std::span<const f32> data, f64 absEb) {
  const gpusim::TimingModel timing(device_);
  gpusim::Launcher launcher;
  const u64 n = data.size();
  const u64 originalBytes = n * sizeof(f32);

  // Multilevel interpolation decomposition with closed-loop quantization:
  // anchors at stride S are quantized directly; each finer level predicts
  // the odd-stride nodes by linear interpolation of already-reconstructed
  // neighbours and quantizes the residual. Error is bounded by eb at every
  // node because prediction always uses reconstructed values.
  u32 levels = 0;
  while ((u64{1} << (levels + 1)) < n && levels < 12) ++levels;
  const u64 S = u64{1} << levels;
  const core::Quantizer quantizer(absEb);

  std::vector<i32> q(n, 0);
  std::vector<f64> vrec(n, 0.0);
  gpusim::MemCounters decompMemModel;  // accumulated over per-level kernels
  u32 kernelLaunches = 0;

  // Anchor kernel.
  const auto launchAnchor = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
    u64 count = 0;
    for (u64 i = 0; i < n; i += S) {
      q[i] = quantizer.quantize(data[i]);
      vrec[i] = quantizer.dequantize<f64>(q[i]);
      ++count;
    }
    ctx.mem.noteStridedRead(count * 4, 4);
    ctx.mem.noteStridedWrite(count * 4, 4);
    ctx.mem.noteOps(count * 4);
  });
  gpusim::MemCounters compMem = launchAnchor.mem;
  ++kernelLaunches;

  // One kernel per level (the multi-kernel structure of MGARD-GPU).
  for (u64 s = S / 2; s >= 1; s /= 2) {
    const auto launchL = launcher.launch(1, [&](gpusim::BlockCtx& ctx) {
      u64 count = 0;
      for (u64 i = s; i < n; i += 2 * s) {
        const f64 left = vrec[i - s];
        const f64 pred = (i + s < n) ? 0.5 * (left + vrec[i + s]) : left;
        const f64 r = static_cast<f64>(data[i]) - pred;
        const i64 qi = std::llround(r / (2.0 * absEb));
        require(qi >= -core::kMaxQuant && qi <= core::kMaxQuant,
                "MGARD hybrid: quantization overflow");
        q[i] = static_cast<i32>(qi);
        vrec[i] = pred + static_cast<f64>(q[i]) * 2.0 * absEb;
        ++count;
      }
      ctx.mem.noteStridedRead(count * 12, 4);  // value + two neighbours
      ctx.mem.noteStridedWrite(count * 8, 4);
      ctx.mem.noteOps(count * 10);
    });
    compMem += launchL.mem;
    decompMemModel += launchL.mem;
    ++kernelLaunches;
    if (s == 1) break;
  }

  // Host: Huffman over the multilevel coefficients (codes + outliers).
  std::vector<u16> codes(n);
  std::vector<std::pair<u64, i32>> outliers;
  for (u64 i = 0; i < n; ++i) {
    if (q[i] > -kCodeOffset + 1 && q[i] < kCodeOffset) {
      codes[i] = static_cast<u16>(q[i] + kCodeOffset);
    } else {
      codes[i] = kOutlierCode;
      outliers.emplace_back(i, q[i]);
    }
  }
  const auto enc = entropy::HuffmanCodec::encode(codes, 65536);
  const u64 compressedBytes = enc.totalBytes() + outliers.size() * 12;

  gpusim::SyncStats noSync;
  const auto kernelTiming = timing.kernel(compMem, noSync);
  const f64 kernelSeconds = kernelTiming.totalSeconds +
                            (kernelLaunches - 1) * timing.launchSeconds();
  const f64 compSeconds = kernelSeconds + timing.pcieSeconds(n * 2) +
                          secondsAt(n * 2, kCpuMgardGBps) +
                          timing.pcieSeconds(compressedBytes);

  // Decompression: Huffman decode on host, inverse cascade on device.
  const auto decodedCodes = entropy::HuffmanCodec::decode(enc);
  require(decodedCodes == codes, "MGARD hybrid: Huffman round trip failed");
  std::vector<f32> reconstructed(n, 0.0f);
  {
    std::vector<f64> vr(n, 0.0);
    usize nextOutlier = 0;
    auto qAt = [&](u64 i) -> i32 {
      if (decodedCodes[i] != kOutlierCode) {
        return static_cast<i32>(decodedCodes[i]) - kCodeOffset;
      }
      while (nextOutlier < outliers.size() &&
             outliers[nextOutlier].first < i) {
        ++nextOutlier;
      }
      require(nextOutlier < outliers.size() &&
                  outliers[nextOutlier].first == i,
              "MGARD hybrid: outlier lookup failed");
      return outliers[nextOutlier].second;
    };
    for (u64 i = 0; i < n; i += S) {
      vr[i] = static_cast<f64>(qAt(i)) * 2.0 * absEb;
    }
    nextOutlier = 0;
    for (u64 s = S / 2; s >= 1; s /= 2) {
      nextOutlier = 0;
      for (u64 i = s; i < n; i += 2 * s) {
        const f64 left = vr[i - s];
        const f64 pred = (i + s < n) ? 0.5 * (left + vr[i + s]) : left;
        vr[i] = pred + static_cast<f64>(qAt(i)) * 2.0 * absEb;
      }
      if (s == 1) break;
    }
    for (u64 i = 0; i < n; ++i) reconstructed[i] = static_cast<f32>(vr[i]);
  }
  const auto decKernelTiming = timing.kernel(decompMemModel, noSync);
  const f64 decSeconds = timing.pcieSeconds(compressedBytes) +
                         secondsAt(n * 2, kCpuMgardGBps) +
                         timing.pcieSeconds(n * 2) +
                         decKernelTiming.totalSeconds +
                         (kernelLaunches - 1) * timing.launchSeconds();

  RunResult r;
  r.compressor = name();
  r.ratio = static_cast<f64>(originalBytes) /
            static_cast<f64>(compressedBytes);
  r.compressGBps = gpusim::gbps(originalBytes, compSeconds);
  r.decompressGBps = gpusim::gbps(originalBytes, decSeconds);
  r.compressKernelGBps = gpusim::gbps(originalBytes, kernelSeconds);
  r.decompressKernelGBps =
      gpusim::gbps(originalBytes, decKernelTiming.totalSeconds);
  r.memThroughputGBps = kernelTiming.memThroughputGBps;
  r.error = metrics::computeErrorStats<f32>(data, reconstructed);
  r.reconstructed = std::move(reconstructed);
  return r;
}

}  // namespace cuszp2::baselines
