// SZ-style CPU compressor baseline (Di & Cappello, IPDPS'16 lineage):
// 1-D Lorenzo prediction, linear-scale quantization, and canonical Huffman
// over the quantization codes — the standard CPU error-bounded pipeline.
//
// Unlike every other baseline in this repository, this one reports *real
// measured wall-clock* throughput of its host implementation, because its
// whole purpose is the paper's Sec. I-A motivation: CPU compressors top
// out orders of magnitude below the 250 GB/s acquisition rates that force
// compression onto the GPU.
#pragma once

#include "baselines/baseline.hpp"

namespace cuszp2::baselines {

class SzCpuBaseline final : public IBaseline {
 public:
  SzCpuBaseline() = default;

  std::string name() const override { return "SZ (CPU, wall clock)"; }
  bool errorBounded() const override { return true; }

  /// compressGBps / decompressGBps are measured host wall-clock rates.
  RunResult run(std::span<const f32> data, f64 relErrorBound) override;
};

}  // namespace cuszp2::baselines
