// cuZFP-like fixed-rate transform baseline (Lindstrom, TVCG'14; cuda_zfp).
//
// A from-scratch 1-D ZFP-style codec over 16-element blocks:
//   1. block-floating-point alignment to the block's maximum exponent,
//   2. exact integer Haar lifting (4 levels) as the decorrelating
//      transform,
//   3. negabinary mapping so truncation errors are sign-balanced,
//   4. embedded bit-plane coding truncated at a *fixed* per-block bit
//      budget of rate * 16 bits.
//
// Fixed rate means the ratio is exactly 32/rate for f32 regardless of
// content — and that aggressive rates silently destroy small-magnitude
// structure, which is the corruption the paper's Fig. 18 shows for cuZFP
// at ratio ~64/~30 while cuSZp2's error bound holds.
#pragma once

#include "baselines/baseline.hpp"

namespace cuszp2::baselines {

class ZfpBaseline final : public IBaseline {
 public:
  /// `rateBitsPerValue` may be fractional (e.g. 0.5 for ratio 64).
  explicit ZfpBaseline(f64 rateBitsPerValue,
                       gpusim::DeviceSpec device = gpusim::a100_40gb());

  std::string name() const override;
  bool errorBounded() const override { return false; }

  /// `param` is ignored (the rate is fixed at construction), matching the
  /// paper's note that cuZFP only supports fixed-rate mode.
  RunResult run(std::span<const f32> data, f64 param) override;

  f64 rate() const { return rate_; }

  static constexpr u32 kBlock = 16;

  // Exposed for unit tests: exact integer Haar lifting pair.
  static void forwardLift(i32* x);  // 16 values, in place
  static void inverseLift(i32* x);

  /// Negabinary mapping and its inverse (exposed for tests).
  static u32 int2uint(i32 v);
  static i32 uint2int(u32 u);

 private:
  f64 rate_;
  gpusim::DeviceSpec device_;
};

}  // namespace cuszp2::baselines
