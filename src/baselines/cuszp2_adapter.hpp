// IBaseline adapters for cuSZp2-P / cuSZp2-O (the paper's two modes) and
// for the cuSZp v1 baseline.
//
// cuSZp v1 *is* cuSZp2-P without the two throughput designs: plain
// fixed-length encoding with scalar strided memory access and a plain
// chained-scan synchronization (paper Table I and Sec. V). That is why its
// compression ratios in Table III are bit-identical to cuSZp2-P while its
// throughput is roughly half.
#pragma once

#include "baselines/baseline.hpp"
#include "core/compressor.hpp"

namespace cuszp2::baselines {

/// Configurable adapter covering cuSZp2-P, cuSZp2-O, cuSZp v1, and the
/// Sec. VI-E ablation variants.
class Cuszp2Baseline final : public IBaseline {
 public:
  Cuszp2Baseline(std::string name, core::Config config,
                 gpusim::DeviceSpec device = gpusim::a100_40gb());

  std::string name() const override { return name_; }
  bool errorBounded() const override { return true; }
  RunResult run(std::span<const f32> data, f64 relErrorBound) override;

  /// Factory helpers with the paper's configurations.
  static std::unique_ptr<Cuszp2Baseline> cuszp2Plain(
      gpusim::DeviceSpec device = gpusim::a100_40gb());
  static std::unique_ptr<Cuszp2Baseline> cuszp2Outlier(
      gpusim::DeviceSpec device = gpusim::a100_40gb());
  static std::unique_ptr<Cuszp2Baseline> cuszpV1(
      gpusim::DeviceSpec device = gpusim::a100_40gb());

 private:
  std::string name_;
  core::Config config_;
  gpusim::DeviceSpec device_;
};

}  // namespace cuszp2::baselines
