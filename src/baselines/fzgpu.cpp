#include "baselines/fzgpu.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/quantizer.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {

namespace {

u32 zigzag(i32 v) {
  return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
}

i32 unzigzag(u32 u) {
  return static_cast<i32>((u >> 1) ^ (~(u & 1) + 1));
}

constexpr u32 kChunk = FzGpuBaseline::kChunk;
constexpr u32 kPlaneBytes = kChunk / 8;

}  // namespace

FzGpuBaseline::FzGpuBaseline(gpusim::DeviceSpec device)
    : device_(std::move(device)) {}

RunResult FzGpuBaseline::run(std::span<const f32> data, f64 relErrorBound) {
  require(!data.empty(), "FzGpuBaseline: empty input");
  const f64 absEb = core::Quantizer::absFromRel(
      relErrorBound, metrics::valueRange(data));
  const core::Quantizer quantizer(absEb);
  const gpusim::TimingModel timing(device_);
  gpusim::Launcher launcher;

  const u64 n = data.size();
  const u64 numChunks = (n + kChunk - 1) / kChunk;
  const u32 chunksPerTile = 32;
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numChunks + chunksPerTile - 1) / chunksPerTile));

  // ---- Compression kernel 1: quantize + diff + zigzag -> codes ---------
  std::vector<u32> codes(numChunks * kChunk, 0);
  const auto launch1 = launcher.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 cFirst = static_cast<u64>(ctx.blockIdx) * chunksPerTile;
    const u64 cLast = std::min(numChunks, cFirst + chunksPerTile);
    u64 elems = 0;
    for (u64 c = cFirst; c < cLast; ++c) {
      i32 prev = 0;
      for (u64 e = c * kChunk; e < std::min(n, (c + 1) * kChunk); ++e) {
        const i32 q = quantizer.quantize(data[e]);
        codes[e] = zigzag(q - prev);
        prev = q;
        ++elems;
      }
    }
    ctx.mem.noteScalarRead(elems * 4, 4, device_.transactionBytes);
    ctx.mem.noteScalarWrite(elems * 4, 4, device_.transactionBytes);
    ctx.mem.noteOps(elems * 6);
  });

  // ---- Compression kernel 2: bitshuffle + zero-plane suppression -------
  std::vector<u32> masks(numChunks, 0);
  std::vector<std::byte> planes;  // deterministic order; atomics are charged
  std::vector<std::vector<std::byte>> chunkPlanes(numChunks);
  const auto launch2 = launcher.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 cFirst = static_cast<u64>(ctx.blockIdx) * chunksPerTile;
    const u64 cLast = std::min(numChunks, cFirst + chunksPerTile);
    u64 bytesOut = 0;
    for (u64 c = cFirst; c < cLast; ++c) {
      const u32* chunk = codes.data() + c * kChunk;
      u32 mask = 0;
      for (u32 i = 0; i < kChunk; ++i) mask |= chunk[i];
      // mask now has a bit set for each plane that is nonzero somewhere.
      u32 planeMask = 0;
      for (u32 b = 0; b < 32; ++b) {
        if (mask & (1u << b)) planeMask |= 1u << b;
      }
      masks[c] = planeMask;
      auto& out = chunkPlanes[c];
      for (u32 b = 0; b < 32; ++b) {
        if (!(planeMask & (1u << b))) continue;
        for (u32 j = 0; j < kPlaneBytes; ++j) {
          u32 byte = 0;
          for (u32 k = 0; k < 8; ++k) {
            byte |= ((chunk[j * 8 + k] >> b) & 1u) << k;
          }
          out.push_back(static_cast<std::byte>(byte));
        }
      }
      bytesOut += 4 + out.size();
      // Output-offset reservation: one global atomic per warp-sized group
      // (FZ-GPU's published kernels reserve space at fine granularity,
      // which is what caps its memory throughput in the paper's Fig. 16).
      ctx.mem.noteAtomics(kChunk / 64);
    }
    ctx.mem.noteScalarRead((cLast - cFirst) * kChunk * 4, 4,
                           device_.transactionBytes);
    // Bitshuffled plane writes land strided across the output.
    ctx.mem.noteStridedWrite(bytesOut, 4);
    ctx.mem.noteOps((cLast - cFirst) * kChunk * 12);
    ctx.mem.noteL1((cLast - cFirst) * kChunk * 4);
  });

  for (u64 c = 0; c < numChunks; ++c) {
    planes.insert(planes.end(), chunkPlanes[c].begin(), chunkPlanes[c].end());
  }
  const u64 compressedBytes = numChunks * 4 + planes.size();

  // ---- Decompression (two kernels in reverse) --------------------------
  std::vector<f32> reconstructed(n, 0.0f);
  std::vector<u64> chunkOffsets(numChunks, 0);
  {
    u64 off = 0;
    for (u64 c = 0; c < numChunks; ++c) {
      chunkOffsets[c] = off;
      off += chunkPlanes[c].size();
    }
  }
  const auto launch3 = launcher.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 cFirst = static_cast<u64>(ctx.blockIdx) * chunksPerTile;
    const u64 cLast = std::min(numChunks, cFirst + chunksPerTile);
    u64 bytesIn = 0;
    u64 elems = 0;
    for (u64 c = cFirst; c < cLast; ++c) {
      const u32 planeMask = masks[c];
      u32 codesChunk[kChunk] = {};
      const std::byte* src = planes.data() + chunkOffsets[c];
      for (u32 b = 0; b < 32; ++b) {
        if (!(planeMask & (1u << b))) continue;
        for (u32 j = 0; j < kPlaneBytes; ++j) {
          const u32 byte = std::to_integer<u32>(*src++);
          for (u32 k = 0; k < 8; ++k) {
            codesChunk[j * 8 + k] |= ((byte >> k) & 1u) << b;
          }
        }
        bytesIn += kPlaneBytes;
      }
      i32 acc = 0;
      for (u64 e = c * kChunk; e < std::min(n, (c + 1) * kChunk); ++e) {
        acc += unzigzag(codesChunk[e - c * kChunk]);
        reconstructed[e] = quantizer.dequantize<f32>(acc);
        ++elems;
      }
      ctx.mem.noteAtomics(kChunk / 64);
    }
    ctx.mem.noteStridedRead(bytesIn + (cLast - cFirst) * 4, 4);
    ctx.mem.noteL1((cLast - cFirst) * kChunk * 4);
    ctx.mem.noteScalarWrite(elems * 4, 4, device_.transactionBytes);
    ctx.mem.noteOps(elems * 14);
  });
  // Second decompression kernel's code round trip (codes -> values) is
  // already included above; charge the intermediate store/load explicitly.
  gpusim::MemCounters roundTrip;
  roundTrip.noteScalarWrite(n * 4, 4, device_.transactionBytes);
  roundTrip.noteScalarRead(n * 4, 4, device_.transactionBytes);

  // ---- Assemble results -------------------------------------------------
  const u64 originalBytes = n * sizeof(f32);
  gpusim::MemCounters compMem = launch1.mem;
  compMem += launch2.mem;
  gpusim::SyncStats compSync = launch2.sync;
  compSync.method = gpusim::SyncMethod::AtomicAggregate;
  compSync.tiles = tiles;

  const auto compTiming = timing.kernel(compMem, compSync);
  const f64 compSeconds = compTiming.totalSeconds + timing.launchSeconds();

  gpusim::MemCounters decMem = launch3.mem;
  decMem += roundTrip;
  gpusim::SyncStats decSync;
  decSync.method = gpusim::SyncMethod::AtomicAggregate;
  decSync.tiles = tiles;
  const auto decTiming = timing.kernel(decMem, decSync);
  const f64 decSeconds = decTiming.totalSeconds + timing.launchSeconds();

  RunResult r;
  r.compressor = name();
  r.ratio = static_cast<f64>(originalBytes) /
            static_cast<f64>(compressedBytes);
  r.compressGBps = gpusim::gbps(originalBytes, compSeconds);
  r.decompressGBps = gpusim::gbps(originalBytes, decSeconds);
  r.compressKernelGBps = r.compressGBps;
  r.decompressKernelGBps = r.decompressGBps;
  r.memThroughputGBps = compTiming.memThroughputGBps;
  r.error = metrics::computeErrorStats<f32>(data, reconstructed);
  r.reconstructed = std::move(reconstructed);
  return r;
}

}  // namespace cuszp2::baselines
