// Uniform interface over all compressors (cuSZp2 itself and every baseline)
// so the bench harness can sweep them identically.
//
// run() executes a full compress + decompress round trip on one field and
// reports: real compressed ratio, reconstruction (for quality metrics), and
// the modelled device timings (end-to-end and kernel-only, the distinction
// the paper's Sec. II is about).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gpusim/device_spec.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {

struct RunResult {
  std::string compressor;

  f64 ratio = 0.0;

  /// Modelled end-to-end throughput w.r.t. original bytes (paper's metric).
  f64 compressGBps = 0.0;
  f64 decompressGBps = 0.0;

  /// Kernel-only throughput (excludes PCIe + CPU stages); for pure-GPU
  /// compressors this is close to end-to-end, for hybrids it is wildly
  /// optimistic — the gap of Fig. 2.
  f64 compressKernelGBps = 0.0;
  f64 decompressKernelGBps = 0.0;

  /// Memory-pipeline throughput of the compression kernel (Figs. 9/16).
  f64 memThroughputGBps = 0.0;

  /// Reconstruction quality vs the original input.
  metrics::ErrorStats error;

  /// Reconstructed data (for Fig. 18-style quality comparisons).
  std::vector<f32> reconstructed;
};

class IBaseline {
 public:
  virtual ~IBaseline() = default;

  virtual std::string name() const = 0;

  /// True for error-bounded compressors (param = REL error bound); false
  /// for fixed-rate (param = bits per value, cuZFP-style).
  virtual bool errorBounded() const = 0;

  /// Compress + decompress `data`; `param` is the REL bound or the rate.
  virtual RunResult run(std::span<const f32> data, f64 param) = 0;
};

}  // namespace cuszp2::baselines
