#include "baselines/cuszp2_adapter.hpp"

#include "core/quantizer.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {

Cuszp2Baseline::Cuszp2Baseline(std::string name, core::Config config,
                               gpusim::DeviceSpec device)
    : name_(std::move(name)), config_(config), device_(std::move(device)) {}

RunResult Cuszp2Baseline::run(std::span<const f32> data, f64 relErrorBound) {
  core::Config cfg = config_;
  cfg.relErrorBound = relErrorBound;
  // Resolve REL -> ABS outside the timed path, exactly like the paper's
  // artifact (the range is a dataset property computed once).
  cfg.absErrorBound = core::Quantizer::absFromRel(
      relErrorBound, metrics::valueRange(data));
  core::Compressor compressor(cfg, device_);

  const auto compressed = compressor.compress(data);
  const auto decompressed = compressor.decompress<f32>(compressed.stream);

  RunResult r;
  r.compressor = name_;
  r.ratio = compressed.ratio;
  r.compressGBps = compressed.profile.endToEndGBps;
  r.decompressGBps = decompressed.profile.endToEndGBps;
  // cuSZp2 is single-kernel and pure GPU: kernel == end-to-end.
  r.compressKernelGBps = r.compressGBps;
  r.decompressKernelGBps = r.decompressGBps;
  r.memThroughputGBps = compressed.profile.timing.memThroughputGBps;
  r.error = metrics::computeErrorStats<f32>(data, decompressed.data);
  r.reconstructed = std::move(decompressed.data);
  return r;
}

std::unique_ptr<Cuszp2Baseline> Cuszp2Baseline::cuszp2Plain(
    gpusim::DeviceSpec device) {
  core::Config cfg;
  cfg.mode = EncodingMode::Plain;
  return std::make_unique<Cuszp2Baseline>("CUSZP2-P", cfg, std::move(device));
}

std::unique_ptr<Cuszp2Baseline> Cuszp2Baseline::cuszp2Outlier(
    gpusim::DeviceSpec device) {
  core::Config cfg;
  cfg.mode = EncodingMode::Outlier;
  return std::make_unique<Cuszp2Baseline>("CUSZP2-O", cfg, std::move(device));
}

std::unique_ptr<Cuszp2Baseline> Cuszp2Baseline::cuszpV1(
    gpusim::DeviceSpec device) {
  core::Config cfg;
  cfg.mode = EncodingMode::Plain;
  cfg.vectorizedAccess = false;
  cfg.syncAlgorithm = scan::Algorithm::ChainedScan;
  return std::make_unique<Cuszp2Baseline>("cuSZp", cfg, std::move(device));
}

}  // namespace cuszp2::baselines
