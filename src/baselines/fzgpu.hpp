// FZ-GPU-like baseline (Zhang et al., HPDC'23): Lorenzo quantization +
// zigzag + bitshuffle + zero-plane suppression.
//
// Faithful structural reproduction of the published pipeline:
//   kernel 1: quantize, first-order difference per chunk, zigzag encode,
//             write full-size codes back to global memory (the extra
//             round trip a two-kernel design pays);
//   kernel 2: per 256-element chunk, bitshuffle the 32-bit codes into 32
//             bit planes, keep only nonzero planes behind a 32-bit mask,
//             and reserve output space with a global atomicAdd (FZ-GPU's
//             synchronization, charged at atomic throughput).
// Decompression mirrors the two kernels in reverse.
//
// The coarse (per-chunk) fixed-length adaptivity and the zigzag sign bit
// are what cuSZp2's per-32-element Outlier-FLE beats in ratio (Table III),
// and the two-kernel + atomic structure is what it beats in throughput
// (Figs. 14/16).
#pragma once

#include "baselines/baseline.hpp"

namespace cuszp2::baselines {

class FzGpuBaseline final : public IBaseline {
 public:
  explicit FzGpuBaseline(gpusim::DeviceSpec device = gpusim::a100_40gb());

  std::string name() const override { return "FZ-GPU"; }
  bool errorBounded() const override { return true; }
  RunResult run(std::span<const f32> data, f64 relErrorBound) override;

  /// Chunk length in elements (one bitshuffle unit).
  static constexpr u32 kChunk = 256;

 private:
  gpusim::DeviceSpec device_;
};

}  // namespace cuszp2::baselines
