#include "baselines/sz_cpu.hpp"

#include <chrono>
#include <vector>

#include "common/error.hpp"
#include "core/quantizer.hpp"
#include "entropy/huffman.hpp"
#include "gpusim/timing.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {

namespace {

constexpr u16 kOutlierCode = 0;
constexpr i32 kCodeOffset = 32768;

f64 secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

RunResult SzCpuBaseline::run(std::span<const f32> data, f64 relErrorBound) {
  require(!data.empty(), "SzCpuBaseline: empty input");
  const f64 absEb = core::Quantizer::absFromRel(
      relErrorBound, metrics::valueRange(data));
  const core::Quantizer quantizer(absEb);
  const u64 originalBytes = data.size() * sizeof(f32);

  // ---- Compression (measured) -------------------------------------------
  const auto tC0 = std::chrono::steady_clock::now();
  std::vector<u16> codes(data.size());
  std::vector<std::pair<u64, i32>> outliers;
  {
    i32 prev = 0;
    for (usize i = 0; i < data.size(); ++i) {
      const i32 q = quantizer.quantize(data[i]);
      const i32 d = q - prev;
      prev = q;
      if (d > -kCodeOffset + 1 && d < kCodeOffset) {
        codes[i] = static_cast<u16>(d + kCodeOffset);
      } else {
        codes[i] = kOutlierCode;
        outliers.emplace_back(i, d);
      }
    }
  }
  const auto enc = entropy::HuffmanCodec::encode(codes, 65536);
  const f64 compSeconds = secondsSince(tC0);
  const u64 compressedBytes = enc.totalBytes() + outliers.size() * 12;

  // ---- Decompression (measured) -----------------------------------------
  const auto tD0 = std::chrono::steady_clock::now();
  const auto decoded = entropy::HuffmanCodec::decode(enc);
  std::vector<f32> reconstructed(data.size());
  {
    usize nextOutlier = 0;
    i32 acc = 0;
    for (usize i = 0; i < decoded.size(); ++i) {
      i32 d = 0;
      if (decoded[i] == kOutlierCode) {
        require(nextOutlier < outliers.size() &&
                    outliers[nextOutlier].first == i,
                "SzCpuBaseline: outlier list out of sync");
        d = outliers[nextOutlier++].second;
      } else {
        d = static_cast<i32>(decoded[i]) - kCodeOffset;
      }
      acc += d;
      reconstructed[i] = quantizer.dequantize<f32>(acc);
    }
  }
  const f64 decSeconds = secondsSince(tD0);

  RunResult r;
  r.compressor = name();
  r.ratio = static_cast<f64>(originalBytes) /
            static_cast<f64>(compressedBytes);
  r.compressGBps = gpusim::gbps(originalBytes, compSeconds);
  r.decompressGBps = gpusim::gbps(originalBytes, decSeconds);
  r.compressKernelGBps = r.compressGBps;  // no kernel/host split on a CPU
  r.decompressKernelGBps = r.decompressGBps;
  r.memThroughputGBps = 0.0;  // not meaningful for a host pipeline
  r.error = metrics::computeErrorStats<f32>(data, reconstructed);
  r.reconstructed = std::move(reconstructed);
  return r;
}

}  // namespace cuszp2::baselines
