#include "baselines/zfp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/error.hpp"
#include "entropy/bitstream.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::baselines {

namespace {

constexpr u32 kBlock = ZfpBaseline::kBlock;

/// Fraction bits of the block-floating-point representation. Two bits of
/// headroom absorb the Haar lifting's coefficient growth.
constexpr int kFracBits = 26;

/// Header: 1 nonzero flag + 9-bit biased exponent + 6-bit top plane.
constexpr u32 kExpBias = 160;

/// One lifting step on a pair: a <- floor avg, b <- diff. Exactly
/// invertible with arithmetic shifts.
void fwdPair(i32& a, i32& b) {
  b -= a;
  a += b >> 1;
}

void invPair(i32& a, i32& b) {
  a -= b >> 1;
  b += a;
}

/// Modelled arithmetic cost per element of the embedded bit-plane coder:
/// it advances one bit at a time per block, which is what keeps cuZFP's
/// kernels well below memory bandwidth (paper Figs. 14/16).
u64 coderOpsPerElement(f64 rate) {
  return 25 + static_cast<u64>(5.0 * rate);
}

}  // namespace

void ZfpBaseline::forwardLift(i32* x) {
  // 4 Haar levels with subband reordering: after each level the averages
  // occupy the front half of the active region, diffs the back half.
  i32 tmp[kBlock];
  for (u32 len = kBlock; len >= 2; len /= 2) {
    for (u32 i = 0; i < len / 2; ++i) {
      i32 a = x[2 * i];
      i32 b = x[2 * i + 1];
      fwdPair(a, b);
      tmp[i] = a;
      tmp[len / 2 + i] = b;
    }
    std::copy(tmp, tmp + len, x);
  }
}

void ZfpBaseline::inverseLift(i32* x) {
  i32 tmp[kBlock];
  for (u32 len = 2; len <= kBlock; len *= 2) {
    for (u32 i = 0; i < len / 2; ++i) {
      i32 a = x[i];
      i32 b = x[len / 2 + i];
      invPair(a, b);
      tmp[2 * i] = a;
      tmp[2 * i + 1] = b;
    }
    std::copy(tmp, tmp + len, x);
  }
}

u32 ZfpBaseline::int2uint(i32 v) {
  constexpr u32 kMask = 0xAAAAAAAAu;
  return (static_cast<u32>(v) + kMask) ^ kMask;
}

i32 ZfpBaseline::uint2int(u32 u) {
  constexpr u32 kMask = 0xAAAAAAAAu;
  return static_cast<i32>((u ^ kMask) - kMask);
}

ZfpBaseline::ZfpBaseline(f64 rateBitsPerValue, gpusim::DeviceSpec device)
    : rate_(rateBitsPerValue), device_(std::move(device)) {
  require(rate_ > 0.0 && rate_ <= 32.0,
          "ZfpBaseline: rate must be in (0, 32]");
}

std::string ZfpBaseline::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "cuZFP(rate=%g)", rate_);
  return buf;
}

RunResult ZfpBaseline::run(std::span<const f32> data, f64 /*param*/) {
  require(!data.empty(), "ZfpBaseline: empty input");
  const u64 n = data.size();
  const u64 numBlocks = (n + kBlock - 1) / kBlock;
  const u32 budget = std::max<u32>(
      1, static_cast<u32>(std::llround(rate_ * kBlock)));

  const gpusim::TimingModel timing(device_);
  gpusim::Launcher launcher;
  const u32 blocksPerTile = 512;
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + blocksPerTile - 1) / blocksPerTile));

  // ---- Compression ------------------------------------------------------
  // Fixed rate => every block writes exactly `budget` bits at a known
  // offset; no inter-block synchronization is needed (Table I: cuZFP is
  // single-kernel but underutilizes bandwidth through its embedded coder).
  std::vector<std::vector<std::byte>> tileStreams(tiles);
  const auto launchC = launcher.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    entropy::BitWriter writer;
    const u64 bFirst = static_cast<u64>(ctx.blockIdx) * blocksPerTile;
    const u64 bLast = std::min(numBlocks, bFirst + blocksPerTile);
    u64 elems = 0;
    for (u64 blk = bFirst; blk < bLast; ++blk) {
      f32 vals[kBlock] = {};
      const u64 eFirst = blk * kBlock;
      const u64 eLast = std::min<u64>(n, eFirst + kBlock);
      for (u64 e = eFirst; e < eLast; ++e) vals[e - eFirst] = data[e];
      elems += eLast - eFirst;

      f32 maxAbs = 0.0f;
      for (f32 v : vals) maxAbs = std::max(maxAbs, std::abs(v));

      u32 written = 0;
      auto put = [&](u64 v, u32 bits) {
        const u32 take = std::min(bits, budget - written);
        writer.write(v, take);
        written += take;
      };

      if (maxAbs == 0.0f) {
        put(0, 1);  // zero-block flag
      } else {
        int e = 0;
        std::frexp(maxAbs, &e);
        put(1, 1);
        put(static_cast<u32>(e + static_cast<int>(kExpBias)), 9);

        i32 coeffs[kBlock];
        const f64 scale = std::ldexp(1.0, kFracBits - e);
        for (u32 i = 0; i < kBlock; ++i) {
          coeffs[i] = static_cast<i32>(std::llround(
              static_cast<f64>(vals[i]) * scale));
        }
        forwardLift(coeffs);
        u32 ubits[kBlock];
        for (u32 i = 0; i < kBlock; ++i) ubits[i] = int2uint(coeffs[i]);

        // Group testing, cheaply: record the highest nonzero plane so the
        // budget is not spent on leading zero planes (real zfp interleaves
        // per-plane significance flags; a 6-bit top-plane field has the
        // same effect at fixed rate).
        u32 allBits = 0;
        for (u32 i = 0; i < kBlock; ++i) allBits |= ubits[i];
        const u32 topPlane = static_cast<u32>(std::bit_width(allBits));
        put(topPlane, 6);

        // Embedded coding: planes from the top significant plane down,
        // truncated at the budget.
        for (int plane = static_cast<int>(topPlane) - 1;
             plane >= 0 && written < budget; --plane) {
          for (u32 i = 0; i < kBlock && written < budget; ++i) {
            put((ubits[i] >> plane) & 1u, 1);
          }
        }
      }
      while (written < budget) put(0, 1);  // pad to the exact fixed rate
    }
    tileStreams[ctx.blockIdx] = writer.take();

    ctx.mem.noteScalarRead(elems * 4, 4, device_.transactionBytes);
    ctx.mem.noteScalarWrite((bLast - bFirst) * budget / 8 + 1, 4,
                            device_.transactionBytes);
    ctx.mem.noteOps((bLast - bFirst) * kBlock * coderOpsPerElement(rate_));
    ctx.mem.noteL1((bLast - bFirst) * kBlock * 8);
  });

  const u64 compressedBytes = (numBlocks * budget + 7) / 8;

  // ---- Decompression ----------------------------------------------------
  std::vector<f32> reconstructed(n, 0.0f);
  const auto launchD = launcher.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 bFirst = static_cast<u64>(ctx.blockIdx) * blocksPerTile;
    const u64 bLast = std::min(numBlocks, bFirst + blocksPerTile);
    entropy::BitReader reader(tileStreams[ctx.blockIdx]);
    u64 elems = 0;
    for (u64 blk = bFirst; blk < bLast; ++blk) {
      u32 consumed = 0;
      auto get = [&](u32 bits) -> u64 {
        const u32 take = std::min(bits, budget - consumed);
        consumed += take;
        return take == 0 ? 0 : reader.read(take);
      };
      f32 vals[kBlock] = {};
      if (get(1) != 0) {
        const u32 biased = static_cast<u32>(get(9));
        const int e = static_cast<int>(biased) - static_cast<int>(kExpBias);
        const u32 topPlane = static_cast<u32>(get(6));
        u32 ubits[kBlock] = {};
        for (int plane = static_cast<int>(topPlane) - 1;
             plane >= 0 && consumed < budget; --plane) {
          for (u32 i = 0; i < kBlock && consumed < budget; ++i) {
            ubits[i] |= static_cast<u32>(get(1)) << plane;
          }
        }
        i32 coeffs[kBlock];
        for (u32 i = 0; i < kBlock; ++i) coeffs[i] = uint2int(ubits[i]);
        inverseLift(coeffs);
        const f64 invScale = std::ldexp(1.0, e - kFracBits);
        for (u32 i = 0; i < kBlock; ++i) {
          vals[i] = static_cast<f32>(coeffs[i] * invScale);
        }
      }
      while (consumed < budget) get(1);  // skip fixed-rate padding
      const u64 eFirst = blk * kBlock;
      const u64 eLast = std::min<u64>(n, eFirst + kBlock);
      for (u64 e = eFirst; e < eLast; ++e) {
        reconstructed[e] = vals[e - eFirst];
      }
      elems += eLast - eFirst;
    }
    ctx.mem.noteScalarRead((bLast - bFirst) * budget / 8 + 1, 4,
                           device_.transactionBytes);
    ctx.mem.noteScalarWrite(elems * 4, 4, device_.transactionBytes);
    ctx.mem.noteOps((bLast - bFirst) * kBlock * coderOpsPerElement(rate_));
  });

  const u64 originalBytes = n * sizeof(f32);
  gpusim::SyncStats noSync;
  const auto compTiming = timing.kernel(launchC.mem, noSync);
  const auto decTiming = timing.kernel(launchD.mem, noSync);

  RunResult r;
  r.compressor = name();
  r.ratio = static_cast<f64>(originalBytes) /
            static_cast<f64>(compressedBytes);
  r.compressGBps = gpusim::gbps(originalBytes, compTiming.totalSeconds);
  r.decompressGBps = gpusim::gbps(originalBytes, decTiming.totalSeconds);
  r.compressKernelGBps = r.compressGBps;
  r.decompressKernelGBps = r.decompressGBps;
  r.memThroughputGBps = compTiming.memThroughputGBps;
  r.error = metrics::computeErrorStats<f32>(data, reconstructed);
  r.reconstructed = std::move(reconstructed);
  return r;
}

}  // namespace cuszp2::baselines
