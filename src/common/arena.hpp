// Bump-pointer scratch arena backing the compressor's transient buffers.
//
// The hot path (compress/decompress) needs several short-lived buffers per
// call: quantized residuals, per-block plans, tile prefix sums, scan flag
// arrays, and the payload staging area. Allocating them from the general
// heap on every call costs malloc/free traffic and page faults; the arena
// instead carves them out of a small list of 64-byte-aligned slabs that are
// rewound (not freed) between calls. After warm-up the arena settles on a
// single slab sized to the high-water mark, so steady-state calls perform
// zero heap allocations — `stats().slabAllocations` stays constant, which
// tests/test_stream_reuse.cpp asserts.
//
// Not thread-safe: a stream allocates all scratch before launching kernels
// and pool workers only touch spans handed to them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2 {

class Arena {
 public:
  /// Every allocation is aligned to this (cache line / AVX-512 friendly).
  static constexpr usize kAlignment = 64;
  // The SIMD kernels (common/simd.hpp) and the cache-line sharing argument
  // both assume exactly 64; alignUp() and aligned_alloc additionally need
  // a power of two that malloc can honor.
  static_assert(kAlignment == 64,
                "Arena::kAlignment must stay cache-line / AVX-512 sized");
  static_assert((kAlignment & (kAlignment - 1)) == 0,
                "Arena::kAlignment must be a power of two");
  static_assert(kAlignment >= alignof(std::max_align_t),
                "Arena::kAlignment must satisfy any fundamental type");
  /// Smallest slab the arena will reserve; avoids slab churn for tiny uses.
  static constexpr usize kMinSlabBytes = usize{1} << 20;  // 1 MiB

  struct Stats {
    u64 slabAllocations = 0;  ///< heap slabs ever requested (monotonic)
    u64 resets = 0;           ///< reset() calls (monotonic)
    usize bytesReserved = 0;  ///< currently reserved slab capacity
    usize highWater = 0;      ///< max bytes in use observed so far
  };

  Arena() = default;
  ~Arena() { release(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of kAlignment-aligned storage valid until reset().
  /// Contents are indeterminate (no zero fill).
  void* allocate(usize bytes) {
    const usize need = alignUp(bytes);
    require(failureBudget_ == 0 || inUse_ + need <= failureBudget_,
            "Arena: injected scratch exhaustion (failure budget exceeded)");
    if (slabs_.empty() || slabs_.back().used + need > slabs_.back().capacity) {
      addSlab(need);
    }
    Slab& slab = slabs_.back();
    void* p = slab.data + slab.used;
    slab.used += need;
    inUse_ += need;
    if (inUse_ > stats_.highWater) stats_.highWater = inUse_;
    return p;
  }

  /// Typed span of `count` default-initialized elements. T must be
  /// trivially destructible (the arena never runs destructors).
  template <typename T>
  std::span<T> allocSpan(usize count) {
    static_assert(std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= kAlignment);
    if (count == 0) return {};
    T* p = static_cast<T*>(allocate(count * sizeof(T)));
    // Default-init (not value-init): trivial types stay uninitialized and
    // the loop compiles away; non-trivial ctors (e.g. std::atomic) run.
    for (usize i = 0; i < count; ++i) new (p + i) T;
    return {p, count};
  }

  /// Rewinds the arena: all previously returned memory becomes invalid and
  /// the space is reused by subsequent allocations. When the last cycle
  /// spilled into multiple slabs they are coalesced into a single slab
  /// sized to the high-water mark, so a workload with stable peak usage
  /// reaches a zero-allocation steady state after one warm-up call.
  void reset() {
    ++stats_.resets;
    if (slabs_.size() > 1) {
      release();
      addSlab(stats_.highWater);
    }
    if (!slabs_.empty()) slabs_.back().used = 0;
    inUse_ = 0;
  }

  /// Frees every slab (stats_ counters are retained).
  void release() {
    for (Slab& s : slabs_) std::free(s.data);
    slabs_.clear();
    stats_.bytesReserved = 0;
    inUse_ = 0;
  }

  const Stats& stats() const { return stats_; }
  usize bytesInUse() const { return inUse_; }

  /// Fault-injection hook (gpusim FaultPlan arena-exhaustion mode): caps
  /// the bytes the arena may hand out before allocate() throws, without
  /// actually reserving less memory. 0 disables the cap.
  void setFailureBudget(usize budgetBytes) { failureBudget_ = budgetBytes; }
  void clearFailureBudget() { failureBudget_ = 0; }

 private:
  struct Slab {
    std::byte* data = nullptr;
    usize capacity = 0;
    usize used = 0;
  };

  static usize alignUp(usize bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void addSlab(usize atLeast) {
    // Geometric growth over total reserved keeps the slab count (and thus
    // the number of coalescing cycles) logarithmic in the peak size.
    usize cap = std::max({alignUp(atLeast), kMinSlabBytes,
                          stats_.bytesReserved});
    void* p = std::aligned_alloc(kAlignment, cap);
    require(p != nullptr, "Arena: slab allocation failed");
    slabs_.push_back(Slab{static_cast<std::byte*>(p), cap, 0});
    stats_.bytesReserved += cap;
    ++stats_.slabAllocations;
  }

  std::vector<Slab> slabs_;
  usize inUse_ = 0;
  usize failureBudget_ = 0;
  Stats stats_;
};

}  // namespace cuszp2
