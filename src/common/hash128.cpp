#include "common/hash128.hpp"

#include <cstdio>
#include <cstring>

namespace cuszp2 {

namespace {

inline u64 rotl64(u64 x, int r) { return (x << r) | (x >> (64 - r)); }

inline u64 fmix64(u64 k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// Byte-wise little-endian u64 read: identical digests on every platform
/// regardless of host endianness or the span's alignment.
inline u64 readLE64(const std::byte* p) {
  u64 v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | std::to_integer<u64>(p[i]);
  }
  return v;
}

}  // namespace

std::string Hash128::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Hash128 hash128(ConstByteSpan data, u64 seed) {
  const std::byte* p = data.data();
  const usize len = data.size();
  const usize nblocks = len / 16;

  u64 h1 = seed;
  u64 h2 = seed;
  constexpr u64 c1 = 0x87C37B91114253D5ull;
  constexpr u64 c2 = 0x4CF5AD432745937Full;

  for (usize i = 0; i < nblocks; ++i) {
    u64 k1 = readLE64(p + i * 16);
    u64 k2 = readLE64(p + i * 16 + 8);

    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729;

    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5;
  }

  const std::byte* tail = p + nblocks * 16;
  const usize rem = len & 15;
  u64 k1 = 0;
  u64 k2 = 0;
  for (usize i = rem; i > 8; --i) {
    k2 = (k2 << 8) | std::to_integer<u64>(tail[i - 1]);
  }
  for (usize i = rem < 8 ? rem : 8; i > 0; --i) {
    k1 = (k1 << 8) | std::to_integer<u64>(tail[i - 1]);
  }
  if (rem > 8) {
    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
  }
  if (rem > 0) {
    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
  }

  h1 ^= static_cast<u64>(len);
  h2 ^= static_cast<u64>(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

}  // namespace cuszp2
