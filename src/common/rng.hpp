// Deterministic random number generation for the synthetic dataset
// generators and the property-based tests. SplitMix64 seeds Xoshiro256**;
// both are tiny, fast, and fully reproducible across platforms.
#pragma once

#include "common/types.hpp"

namespace cuszp2 {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Xoshiro256**: the workhorse generator.
class Rng {
 public:
  explicit Rng(u64 seed);

  /// Uniform 64-bit value.
  u64 next();

  /// Uniform double in [0, 1).
  f64 uniform();

  /// Uniform double in [lo, hi).
  f64 uniform(f64 lo, f64 hi);

  /// Uniform integer in [0, n).
  u64 uniformInt(u64 n);

  /// Standard normal via Box-Muller (cached second value).
  f64 normal();

  /// Normal with given mean / stddev.
  f64 normal(f64 mean, f64 stddev);

 private:
  u64 s_[4];
  bool hasCached_ = false;
  f64 cached_ = 0.0;
};

}  // namespace cuszp2
