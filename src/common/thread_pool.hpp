// FIFO thread pool used by the GPU execution model's kernel launcher.
//
// FIFO ordering is load-bearing: the decoupled-lookback scan (paper Sec. IV-C)
// requires that a thread block's predecessors were dispatched no later than
// the block itself, so the lowest-indexed unfinished block is always running
// and can make progress — the same forward-progress guarantee real GPU
// hardware gives the algorithm.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace cuszp2 {

class ThreadPool {
 public:
  /// Creates `workers` worker threads (>= 1 enforced).
  explicit ThreadPool(usize workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks are started in submission order.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  usize workerCount() const { return threads_.size(); }

  /// Reasonable default worker count for this host: at least 2 so that
  /// inter-block spin/wait protocols are exercised with real concurrency
  /// even on single-core CI machines. A `CUSZP2_WORKERS` environment
  /// variable overrides the hardware-derived value (clamped to [1, 64]).
  /// An explicit request of 1 is honoured: every spin protocol in the
  /// tree waits only on *earlier* tiles, so one FIFO worker makes
  /// progress — and runs tiles in order, which makes the measured sync
  /// stats (lookback depth, wait spins) scheduling-independent. The
  /// perf-regression harness relies on that for deterministic modelled
  /// metrics.
  static usize defaultWorkers();

  /// Sentinel returned by currentWorkerIndex() on non-pool threads.
  static constexpr usize kNotAWorker = static_cast<usize>(-1);

  /// Index of the calling thread within the pool that owns it, or
  /// kNotAWorker when called from a thread no pool owns. Lets per-call
  /// scratch be pre-partitioned into one slot per worker.
  static usize currentWorkerIndex();

  /// The pool that owns the calling thread, or nullptr. Used by the
  /// launcher to detect nested launches onto the caller's own pool.
  static ThreadPool* currentPool();

 private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cvTask_;
  std::condition_variable cvDone_;
  usize inFlight_ = 0;
  bool stop_ = false;
};

}  // namespace cuszp2
