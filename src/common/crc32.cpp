#include "common/crc32.hpp"

#include <array>

namespace cuszp2 {

namespace {

constexpr u32 kPoly = 0xEDB88320u;  // reflected IEEE 802.3

std::array<u32, 256> makeTable() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

u32 crc32(ConstByteSpan data, u32 seed) {
  static const std::array<u32, 256> kTable = makeTable();
  u32 c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = kTable[(c ^ std::to_integer<u32>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cuszp2
