// 64-byte-aligned owning buffer. Mirrors cudaMalloc'd device allocations in
// the GPU execution model: alignment guarantees the vectorized (128-bit)
// access helpers never straddle a transaction boundary at element 0.
#pragma once

#include <cstdlib>
#include <new>
#include <span>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2 {

template <typename T>
class AlignedBuffer {
 public:
  static constexpr usize kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(usize count) { resize(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocates to `count` elements; contents are not preserved.
  void resize(usize count) {
    release();
    if (count == 0) return;
    void* p = std::aligned_alloc(kAlignment, roundUpBytes(count * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    size_ = count;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  usize size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](usize i) { return data_[i]; }
  const T& operator[](usize i) const { return data_[i]; }

  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  static usize roundUpBytes(usize bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  usize size_ = 0;
};

}  // namespace cuszp2
