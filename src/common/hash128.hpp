// Seeded 128-bit content hash for the content-addressed block store.
//
// The CRC-16/CRC-32 machinery (crc32.hpp, core::blockDigest) answers "did
// these bytes change in flight?" — a transport-integrity question where 16
// or 32 bits of state suffice. A content-addressed store asks a stronger
// question: "are these two blocks THE SAME bytes?", and answers it by
// comparing digests alone, so collisions silently alias one tenant's data
// to another's. hash128 layers a 128-bit mixing function over the same
// byte-walk so accidental collisions are out of reach (2^-64 birthday
// bound at 2^32 chunks), while every serialized CAS section stays
// CRC-32-guarded on disk exactly like the stream formats (the hash names
// content; the CRC still detects wire damage — see docs/CAS.md).
//
// Properties:
//   * deterministic across platforms (byte-wise little-endian reads, no
//     alignment or endianness dependence);
//   * seeded: a store's hashSeed perturbs every digest, so two stores
//     cannot be spliced together by replaying hash-indexed chunks;
//   * NOT cryptographic — this defends against accidents, not attackers
//     (same stance as the paper artifact's checksum use).
#pragma once

#include <string>

#include "common/types.hpp"

namespace cuszp2 {

/// 128-bit digest value. Ordered + hashable so it can key maps directly.
struct Hash128 {
  u64 hi = 0;
  u64 lo = 0;

  bool operator==(const Hash128&) const = default;
  auto operator<=>(const Hash128&) const = default;

  /// 32 lowercase hex digits, hi half first (stable CLI/log form).
  std::string hex() const;
};

/// Seeded 128-bit hash of `data` (murmur3-x64-128-style mixing).
Hash128 hash128(ConstByteSpan data, u64 seed = 0);

}  // namespace cuszp2
