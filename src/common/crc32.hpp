// CRC-32 (IEEE 802.3 polynomial, reflected) for stream integrity checks.
// Compressed streams can carry a checksum over their offset + payload
// regions so silent corruption (bit rot, truncated transfers) is caught at
// decompression instead of producing quietly wrong science data.
#pragma once

#include "common/types.hpp"

namespace cuszp2 {

/// CRC-32 of `data`; chainable via `seed` (pass a previous result to
/// continue over split buffers).
u32 crc32(ConstByteSpan data, u32 seed = 0);

}  // namespace cuszp2
