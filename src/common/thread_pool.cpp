#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace cuszp2 {

namespace {
thread_local usize tWorkerIndex = ThreadPool::kNotAWorker;
thread_local ThreadPool* tOwnerPool = nullptr;
}  // namespace

ThreadPool::ThreadPool(usize workers) {
  const usize n = std::max<usize>(1, workers);
  threads_.reserve(n);
  for (usize i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] {
      tWorkerIndex = i;
      tOwnerPool = this;
      workerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  cvTask_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cvDone_.wait(lock, [this] { return inFlight_ == 0; });
}

usize ThreadPool::defaultWorkers() {
  if (const char* env = std::getenv("CUSZP2_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return std::clamp<usize>(static_cast<usize>(v), 1, 64);
  }
  const usize hw = std::thread::hardware_concurrency();
  return std::clamp<usize>(hw, 2, 16);
}

usize ThreadPool::currentWorkerIndex() { return tWorkerIndex; }

ThreadPool* ThreadPool::currentPool() { return tOwnerPool; }

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cvTask_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ must be true
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) cvDone_.notify_all();
    }
  }
}

}  // namespace cuszp2
