// Library-wide exception type and checking helpers.
#pragma once

#include <stdexcept>
#include <string>

namespace cuszp2 {

/// Thrown on invalid arguments, corrupt streams, or internal invariant
/// violations. All public entry points validate input and throw this type
/// rather than exhibiting undefined behaviour.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Validates a user-facing precondition; throws cuszp2::Error on failure.
/// The message is a C string so the success path constructs nothing — the
/// std::string materializes only when the check fails. (With the previous
/// `const std::string&` signature every call heap-allocated its message
/// before testing the condition, which dominated the quantization loop.)
inline void require(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

}  // namespace cuszp2
