// Host SIMD dispatch for the hot codec kernels (quantize+diff, bit-plane
// pack/unpack, prefix sums, dequantize). The compressed format is defined
// by the scalar kernels; every vector path here must be byte-identical to
// its scalar counterpart — integer kernels trivially, the float kernels by
// doing all arithmetic in the same IEEE f64 operations the scalar code
// performs (multiply, truncate, compare, convert are all exactly rounded,
// so lane order cannot change a result).
//
// Dispatch contract: each simd:: entry point returns `true` (or an element
// count) when the active vector path handled the call, and `false` (or 0)
// when the caller must run its scalar reference loop — so the scalar code
// stays where it is documented (fle.hpp, block_codec.cpp, stream.cpp) and
// `CUSZP2_SIMD=scalar` exercises exactly the pre-SIMD byte path.
//
// Backends: AVX2 on x86-64 (compiled via the `target` function attribute so
// the TU itself needs no -mavx2; entered only after a runtime
// __builtin_cpu_supports check), NEON on AArch64 for the integer kernels,
// scalar everywhere else. Runtime-selectable: CUSZP2_SIMD=scalar|native
// (default native when supported), overridable in-process via setMode() so
// tests can compare both modes against each other.
#pragma once

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <span>

#include "common/types.hpp"

#if defined(__x86_64__) || defined(__amd64__) || defined(_M_X64)
#define CUSZP2_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define CUSZP2_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace cuszp2::simd {

enum class Mode : u8 { Scalar = 0, Native = 1 };

namespace detail {

inline bool nativeSupported() {
#if defined(CUSZP2_SIMD_X86)
  return __builtin_cpu_supports("avx2");
#elif defined(CUSZP2_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

inline Mode initialMode() {
  const char* env = std::getenv("CUSZP2_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) return Mode::Scalar;
  // "native" or unset: widest supported path.
  return nativeSupported() ? Mode::Native : Mode::Scalar;
}

inline std::atomic<Mode>& modeCell() {
  static std::atomic<Mode> mode{initialMode()};
  return mode;
}

}  // namespace detail

inline Mode activeMode() {
  return detail::modeCell().load(std::memory_order_relaxed);
}

/// Test/tooling override; Native silently degrades to Scalar when the CPU
/// lacks the vector ISA so a sweep over both modes is always valid.
inline void setMode(Mode m) {
  if (m == Mode::Native && !detail::nativeSupported()) m = Mode::Scalar;
  detail::modeCell().store(m, std::memory_order_relaxed);
}

inline bool nativeActive() { return activeMode() == Mode::Native; }

inline const char* modeName() {
  if (!nativeActive()) return "scalar";
#if defined(CUSZP2_SIMD_X86)
  return "avx2";
#elif defined(CUSZP2_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// i32 lanes per vector op of the active backend (diagnostic only).
inline u32 laneCount() {
#if defined(CUSZP2_SIMD_X86)
  return nativeActive() ? 8 : 1;
#elif defined(CUSZP2_SIMD_NEON)
  return nativeActive() ? 4 : 1;
#else
  return 1;
#endif
}

/// quantizeDiffPrefix return value: a lane failed validation (non-finite or
/// out of quantization range); the caller re-runs its scalar loop from the
/// start for the exact diagnostic the format contract promises.
inline constexpr usize kLaneFault = ~usize{0};

// ---- AVX2 backend ------------------------------------------------------
#if defined(CUSZP2_SIMD_X86)

namespace detail {

/// Round-half-away-from-zero of 4 f64 lanes, matching
/// Quantizer::roundHalfAway bit-for-bit on every lane that passes the
/// range check: t = trunc(scaled) and frac = scaled - t are exact, and
/// t + (frac >= 0.5) - (frac <= -0.5) stays within f64's exact-integer
/// range for any |q| <= 2^30.
__attribute__((target("avx2"))) inline __m256d roundHalfAwayPd(__m256d s) {
  const __m256d t =
      _mm256_round_pd(s, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256d frac = _mm256_sub_pd(s, t);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d up =
      _mm256_and_pd(_mm256_cmp_pd(frac, _mm256_set1_pd(0.5), _CMP_GE_OQ),
                    one);
  const __m256d dn =
      _mm256_and_pd(_mm256_cmp_pd(frac, _mm256_set1_pd(-0.5), _CMP_LE_OQ),
                    one);
  return _mm256_sub_pd(_mm256_add_pd(t, up), dn);
}

/// Any of the 8 converted lanes out of the [-maxQuant, maxQuant]
/// quantization range? Checked in the integer domain after cvtpd_epi32:
/// every in-range rounded value is integral and converts exactly, and any
/// lane cvt could not represent (NaN, inf, |x| >= 2^31) becomes the
/// indefinite value 0x80000000, whose unsigned magnitude also exceeds
/// maxQuant — so one unsigned-magnitude compare rejects all bad lanes.
__attribute__((target("avx2"))) inline bool anyLaneOutOfRange(__m256i q,
                                                              u32 maxQuant) {
  const __m256i mag = _mm256_abs_epi32(q);
  const __m256i maxV = _mm256_set1_epi32(static_cast<i32>(maxQuant));
  const __m256i clamped = _mm256_max_epu32(mag, maxV);
  return _mm256_movemask_epi8(_mm256_cmpeq_epi32(clamped, maxV)) != -1;
}

__attribute__((target("avx2"))) inline usize quantizeDiffPrefixF32Avx2(
    f64 recip, const f32* values, usize n, i32* residuals, i32* prev) {
  const usize vecN = n & ~usize{7};
  const __m256d recipV = _mm256_set1_pd(recip);
  const u32 maxQuant = (1u << 30) - 1;
  const __m256i rotate =
      _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  i32 p = *prev;
  for (usize i = 0; i < vecN; i += 8) {
    const __m256 f = _mm256_loadu_ps(values + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(f));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1));
    const __m256d qlo = roundHalfAwayPd(_mm256_mul_pd(lo, recipV));
    const __m256d qhi = roundHalfAwayPd(_mm256_mul_pd(hi, recipV));
    const __m256i q = _mm256_set_m128i(_mm256_cvtpd_epi32(qhi),
                                       _mm256_cvtpd_epi32(qlo));
    if (anyLaneOutOfRange(q, maxQuant)) {
      *prev = p;
      return kLaneFault;
    }
    const __m256i rotated = _mm256_permutevar8x32_epi32(q, rotate);
    const __m256i shifted =
        _mm256_blend_epi32(rotated, _mm256_set1_epi32(p), 0x01);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(residuals + i),
                        _mm256_sub_epi32(q, shifted));
    p = _mm256_extract_epi32(q, 7);
  }
  *prev = p;
  return vecN;
}

__attribute__((target("avx2"))) inline usize quantizeDiffPrefixF64Avx2(
    f64 recip, const f64* values, usize n, i32* residuals, i32* prev) {
  const usize vecN = n & ~usize{7};
  const __m256d recipV = _mm256_set1_pd(recip);
  const u32 maxQuant = (1u << 30) - 1;
  const __m256i rotate =
      _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  i32 p = *prev;
  for (usize i = 0; i < vecN; i += 8) {
    const __m256d vlo = _mm256_loadu_pd(values + i);
    const __m256d vhi = _mm256_loadu_pd(values + i + 4);
    const __m256d qlo = roundHalfAwayPd(_mm256_mul_pd(vlo, recipV));
    const __m256d qhi = roundHalfAwayPd(_mm256_mul_pd(vhi, recipV));
    const __m256i q = _mm256_set_m128i(_mm256_cvtpd_epi32(qhi),
                                       _mm256_cvtpd_epi32(qlo));
    if (anyLaneOutOfRange(q, maxQuant)) {
      *prev = p;
      return kLaneFault;
    }
    const __m256i rotated = _mm256_permutevar8x32_epi32(q, rotate);
    const __m256i shifted =
        _mm256_blend_epi32(rotated, _mm256_set1_epi32(p), 0x01);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(residuals + i),
                        _mm256_sub_epi32(q, shifted));
    p = _mm256_extract_epi32(q, 7);
  }
  *prev = p;
  return vecN;
}

__attribute__((target("avx2"))) inline u32 maxAbsU32Avx2(const i32* v,
                                                         usize n) {
  __m256i acc = _mm256_setzero_si256();
  usize i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // abs(INT32_MIN) wraps to 0x80000000, exactly absU32's u32 magnitude.
    acc = _mm256_max_epu32(acc, _mm256_abs_epi32(x));
  }
  alignas(32) u32 lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  u32 m = 0;
  for (const u32 l : lanes) m = m < l ? l : m;
  for (; i < n; ++i) {
    const i32 x = v[i];
    const u32 a = x < 0 ? 0u - static_cast<u32>(x) : static_cast<u32>(x);
    m = m < a ? a : m;
  }
  return m;
}

/// Max of absU32 over v[1..n) for n a multiple of 8: lane 0 of the first
/// vector is zeroed (abs values are non-negative, so zero is the identity)
/// and every vector participates — no scalar tail on the hot plan path.
__attribute__((target("avx2"))) inline u32 maxAbsTailU32Avx2(const i32* v,
                                                             usize n) {
  __m256i first =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  first = _mm256_blend_epi32(first, _mm256_setzero_si256(), 0x01);
  __m256i acc = _mm256_abs_epi32(first);
  for (usize i = 8; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_max_epu32(acc, _mm256_abs_epi32(x));
  }
  alignas(32) u32 lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  u32 m = 0;
  for (const u32 l : lanes) m = m < l ? l : m;
  return m;
}

__attribute__((target("avx2"))) inline void absI32Avx2(const i32* v, usize n,
                                                       u32* out) {
  usize i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_abs_epi32(x));
  }
  for (; i < n; ++i) {
    const i32 x = v[i];
    out[i] = x < 0 ? 0u - static_cast<u32>(x) : static_cast<u32>(x);
  }
}

__attribute__((target("avx2"))) inline void diffI32Avx2(const i32* v,
                                                        usize n, i32* out) {
  const __m256i rotate = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  i32 p = 0;
  usize i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i rotated = _mm256_permutevar8x32_epi32(q, rotate);
    const __m256i shifted =
        _mm256_blend_epi32(rotated, _mm256_set1_epi32(p), 0x01);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi32(q, shifted));
    p = _mm256_extract_epi32(q, 7);
  }
  for (; i < n; ++i) {
    out[i] = v[i] - p;
    p = v[i];
  }
}

__attribute__((target("avx2"))) inline void packSignsAvx2(const i32* diffs,
                                                          usize n,
                                                          std::byte* out) {
  for (usize j = 0; j * 8 < n; ++j) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(diffs + j * 8));
    out[j] = static_cast<std::byte>(
        _mm256_movemask_ps(_mm256_castsi256_ps(v)));
  }
}

/// Fused single pass over one block: absolute values out plus the packed
/// sign bitmap, loading each group of 8 residuals once. `n` must be a
/// multiple of 8 (BlockCodec guarantees blockSize % 8 == 0).
__attribute__((target("avx2"))) inline void absAndPackSignsAvx2(
    const i32* residuals, usize n, u32* absOut, std::byte* signs) {
  for (usize j = 0; j * 8 < n; ++j) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(residuals + j * 8));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(absOut + j * 8),
                        _mm256_abs_epi32(v));
    signs[j] = static_cast<std::byte>(
        _mm256_movemask_ps(_mm256_castsi256_ps(v)));
  }
}

__attribute__((target("avx2"))) inline void packPlanesAvx2(const u32* vals,
                                                           usize n, u32 fl,
                                                           std::byte* out) {
  const usize pb = n / 8;
  for (usize j = 0; j < pb; ++j) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(vals + j * 8));
    std::byte* dst = out + j;
    for (u32 plane = 0; plane < fl; ++plane) {
      // Move bit `plane` of every lane into the lane's sign position; one
      // movemask then emits the whole plane byte.
      const __m256i sh =
          _mm256_sll_epi32(v, _mm_cvtsi32_si128(static_cast<int>(31 - plane)));
      dst[static_cast<usize>(plane) * pb] = static_cast<std::byte>(
          _mm256_movemask_ps(_mm256_castsi256_ps(sh)));
    }
  }
}

__attribute__((target("avx2"))) inline void unpackPlanesAvx2(
    const std::byte* in, usize n, u32 fl, u32* vals) {
  const usize pb = n / 8;
  const __m256i laneBits =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (usize j = 0; j < pb; ++j) {
    const std::byte* src = in + j;
    __m256i acc = _mm256_setzero_si256();
    for (u32 plane = 0; plane < fl; ++plane) {
      const int b = std::to_integer<int>(src[static_cast<usize>(plane) * pb]);
      const __m256i isSet = _mm256_cmpeq_epi32(
          _mm256_and_si256(_mm256_set1_epi32(b), laneBits), laneBits);
      acc = _mm256_or_si256(
          acc, _mm256_and_si256(
                   isSet, _mm256_set1_epi32(static_cast<i32>(1u << plane))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j * 8), acc);
  }
}

__attribute__((target("avx2"))) inline void applySignsAvx2(
    const std::byte* signs, const u32* absVals, usize n, i32* out) {
  const __m256i laneBits =
      _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  for (usize j = 0; j * 8 < n; ++j) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(absVals + j * 8));
    const int b = std::to_integer<int>(signs[j]);
    const __m256i neg = _mm256_cmpeq_epi32(
        _mm256_and_si256(_mm256_set1_epi32(b), laneBits), laneBits);
    const __m256i negated = _mm256_sub_epi32(_mm256_setzero_si256(), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j * 8),
                        _mm256_blendv_epi8(a, negated, neg));
  }
}

/// Inclusive 8-lane i32 scan within one register (log-step shifts inside
/// the 128-bit lanes, then the low lane's total is added to the high lane).
__attribute__((target("avx2"))) inline __m256i scan8Epi32(__m256i x) {
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
  x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
  const __m256i lowTotal = _mm256_permutevar8x32_epi32(
      x, _mm256_setr_epi32(3, 3, 3, 3, 3, 3, 3, 3));
  return _mm256_add_epi32(
      x, _mm256_blend_epi32(_mm256_setzero_si256(), lowTotal, 0xF0));
}

__attribute__((target("avx2"))) inline void prefixSumI32Avx2(const i32* in,
                                                             usize n,
                                                             i32* out) {
  i32 carry = 0;
  usize i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = scan8Epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i)));
    const __m256i withCarry =
        _mm256_add_epi32(x, _mm256_set1_epi32(carry));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), withCarry);
    carry = _mm256_extract_epi32(withCarry, 7);
  }
  for (; i < n; ++i) {
    carry = static_cast<i32>(static_cast<u32>(carry) +
                             static_cast<u32>(in[i]));
    out[i] = carry;
  }
}

__attribute__((target("avx2"))) inline void dequantizeF32Avx2(
    const i32* q, usize n, f64 twoEb, f32* out) {
  const __m256d scale = _mm256_set1_pd(twoEb);
  usize i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i qi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    const __m256d lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(qi));
    const __m256d hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(qi, 1));
    // cvtpd_ps rounds to nearest-even exactly like static_cast<f32>(f64).
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_mul_pd(lo, scale)));
    _mm_storeu_ps(out + i + 4, _mm256_cvtpd_ps(_mm256_mul_pd(hi, scale)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<f32>(static_cast<f64>(q[i]) * twoEb);
  }
}

__attribute__((target("avx2"))) inline void dequantizeF64Avx2(
    const i32* q, usize n, f64 twoEb, f64* out) {
  const __m256d scale = _mm256_set1_pd(twoEb);
  usize i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i qi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_cvtepi32_pd(qi), scale));
  }
  for (; i < n; ++i) out[i] = static_cast<f64>(q[i]) * twoEb;
}

__attribute__((target("avx2"))) inline u64 sumMaskedU64Avx2(const u64* words,
                                                            usize n,
                                                            u64 mask) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i maskV = _mm256_set1_epi64x(static_cast<long long>(mask));
  usize i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(acc, _mm256_and_si256(w, maskV));
  }
  alignas(32) u64 lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  u64 total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) total += words[i] & mask;
  return total;
}

}  // namespace detail

#endif  // CUSZP2_SIMD_X86

// ---- NEON backend (integer kernels only) -------------------------------
// The float quantize path stays scalar on AArch64 until it can be
// hardware-validated against the golden streams; the integer kernels below
// are bit-exact by construction.
#if defined(CUSZP2_SIMD_NEON)

namespace detail {

inline u32 maxAbsU32Neon(const i32* v, usize n) {
  uint32x4_t acc = vdupq_n_u32(0);
  usize i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t x = vld1q_s32(v + i);
    acc = vmaxq_u32(acc, vreinterpretq_u32_s32(vqabsq_s32(x)));
  }
  u32 m = vmaxvq_u32(acc);
  for (; i < n; ++i) {
    const i32 x = v[i];
    const u32 a = x < 0 ? 0u - static_cast<u32>(x) : static_cast<u32>(x);
    m = m < a ? a : m;
  }
  return m;
}

inline void absI32Neon(const i32* v, usize n, u32* out) {
  usize i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u32(out + i, vreinterpretq_u32_s32(vabsq_s32(vld1q_s32(v + i))));
  }
  for (; i < n; ++i) {
    const i32 x = v[i];
    out[i] = x < 0 ? 0u - static_cast<u32>(x) : static_cast<u32>(x);
  }
}

inline void dequantizeF64Neon(const i32* q, usize n, f64 twoEb, f64* out) {
  const float64x2_t scale = vdupq_n_f64(twoEb);
  usize i = 0;
  for (; i + 2 <= n; i += 2) {
    const int32x2_t qi = vld1_s32(q + i);
    vst1q_f64(out + i,
              vmulq_f64(vcvtq_f64_s64(vmovl_s32(qi)), scale));
  }
  for (; i < n; ++i) out[i] = static_cast<f64>(q[i]) * twoEb;
}

}  // namespace detail

#endif  // CUSZP2_SIMD_NEON

// ---- Dispatching entry points ------------------------------------------

/// Fused quantize (round-half-away) + first-order diff over a vectorizable
/// prefix of `values`. Returns the element count consumed (0 when the
/// caller must run its scalar loop for everything), or kLaneFault when a
/// lane is non-finite/out-of-range (caller restarts scalar from element 0
/// with *prev reset, reproducing the exact scalar diagnostic). `*prev`
/// carries the last quantization integer into the caller's tail loop.
inline usize quantizeDiffPrefix(f64 recip, std::span<const f32> values,
                                i32* residuals, i32* prev) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    return detail::quantizeDiffPrefixF32Avx2(recip, values.data(),
                                             values.size(), residuals, prev);
  }
#endif
  (void)recip;
  (void)values;
  (void)residuals;
  (void)prev;
  return 0;
}

inline usize quantizeDiffPrefix(f64 recip, std::span<const f64> values,
                                i32* residuals, i32* prev) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    return detail::quantizeDiffPrefixF64Avx2(recip, values.data(),
                                             values.size(), residuals, prev);
  }
#endif
  (void)recip;
  (void)values;
  (void)residuals;
  (void)prev;
  return 0;
}

/// Max of absU32 over `v`; false = caller runs its scalar loop.
inline bool maxAbsU32(std::span<const i32> v, u32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    *out = detail::maxAbsU32Avx2(v.data(), v.size());
    return true;
  }
#elif defined(CUSZP2_SIMD_NEON)
  if (nativeActive()) {
    *out = detail::maxAbsU32Neon(v.data(), v.size());
    return true;
  }
#endif
  (void)v;
  (void)out;
  return false;
}

/// Max of absU32 over v[1..) for a block whose size is a multiple of 8
/// (the plan scan's "tail" max — the head element is the outlier
/// candidate); false = caller runs its scalar loop.
inline bool maxAbsTailU32(std::span<const i32> v, u32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive() && v.size() % 8 == 0 && !v.empty()) {
    *out = detail::maxAbsTailU32Avx2(v.data(), v.size());
    return true;
  }
#endif
  (void)v;
  (void)out;
  return false;
}

/// out[i] = absU32(v[i]); false = caller runs its scalar loop.
inline bool absI32(std::span<const i32> v, u32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::absI32Avx2(v.data(), v.size(), out);
    return true;
  }
#elif defined(CUSZP2_SIMD_NEON)
  if (nativeActive()) {
    detail::absI32Neon(v.data(), v.size(), out);
    return true;
  }
#endif
  (void)v;
  (void)out;
  return false;
}

/// out[i] = v[i] - v[i-1] (v[-1] = 0); false = caller's scalar loop.
inline bool diffI32(std::span<const i32> v, i32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::diffI32Avx2(v.data(), v.size(), out);
    return true;
  }
#endif
  (void)v;
  (void)out;
  return false;
}

/// Sign-bit bitmap of `diffs` (size a multiple of 8).
/// Fused |residuals| + packed sign bitmap in one pass (size a multiple
/// of 8); false = caller runs packSigns + its scalar abs loop.
inline bool absAndPackSigns(std::span<const i32> residuals, u32* absOut,
                            std::byte* signs) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::absAndPackSignsAvx2(residuals.data(), residuals.size(), absOut,
                                signs);
    return true;
  }
#endif
  (void)residuals;
  (void)absOut;
  (void)signs;
  return false;
}

inline bool packSigns(std::span<const i32> diffs, std::byte* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::packSignsAvx2(diffs.data(), diffs.size(), out);
    return true;
  }
#endif
  (void)diffs;
  (void)out;
  return false;
}

/// Bit-plane pack of `vals` (size a multiple of 8) into fl planes.
inline bool packPlanes(std::span<const u32> vals, u32 fl, std::byte* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::packPlanesAvx2(vals.data(), vals.size(), fl, out);
    return true;
  }
#endif
  (void)vals;
  (void)fl;
  (void)out;
  return false;
}

/// Bit-plane unpack into `vals` (size a multiple of 8).
inline bool unpackPlanes(const std::byte* in, u32 fl, std::span<u32> vals) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::unpackPlanesAvx2(in, vals.size(), fl, vals.data());
    return true;
  }
#endif
  (void)in;
  (void)fl;
  (void)vals;
  return false;
}

/// out[i] = signBit(signs, i) ? -absVals[i] : absVals[i] (size multiple
/// of 8).
inline bool applySigns(const std::byte* signs, std::span<const u32> absVals,
                       i32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::applySignsAvx2(signs, absVals.data(), absVals.size(), out);
    return true;
  }
#endif
  (void)signs;
  (void)absVals;
  (void)out;
  return false;
}

/// Inclusive prefix sum (first-order prediction inverse); in-place allowed.
inline bool prefixSumI32(std::span<const i32> in, i32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::prefixSumI32Avx2(in.data(), in.size(), out);
    return true;
  }
#endif
  (void)in;
  (void)out;
  return false;
}

/// out[i] = (f32)(q[i] * twoEb), arithmetic in f64 like
/// Quantizer::dequantize.
inline bool dequantize(std::span<const i32> q, f64 twoEb, f32* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::dequantizeF32Avx2(q.data(), q.size(), twoEb, out);
    return true;
  }
#endif
  (void)q;
  (void)twoEb;
  (void)out;
  return false;
}

inline bool dequantize(std::span<const i32> q, f64 twoEb, f64* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    detail::dequantizeF64Avx2(q.data(), q.size(), twoEb, out);
    return true;
  }
#elif defined(CUSZP2_SIMD_NEON)
  if (nativeActive()) {
    detail::dequantizeF64Neon(q.data(), q.size(), twoEb, out);
    return true;
  }
#endif
  (void)q;
  (void)twoEb;
  (void)out;
  return false;
}

/// sum(words[i] & mask) — the decoupled-lookback window combine. Exact in
/// u64 in any order; false = caller's scalar loop.
inline bool sumMaskedU64(std::span<const u64> words, u64 mask, u64* out) {
#if defined(CUSZP2_SIMD_X86)
  if (nativeActive()) {
    *out = detail::sumMaskedU64Avx2(words.data(), words.size(), mask);
    return true;
  }
#endif
  (void)words;
  (void)mask;
  (void)out;
  return false;
}

}  // namespace cuszp2::simd
