// Bit-manipulation utilities used by the fixed-length encoders and the
// bitstream layer.
#pragma once

#include <bit>
#include <cstring>

#include "common/types.hpp"

namespace cuszp2 {

/// Number of bits needed to represent `v` (0 for v == 0). This is the
/// "fixed length" of the paper's FLE: effective-bit count of the largest
/// absolute quantization difference in a block.
constexpr u32 effectiveBits(u32 v) {
  return static_cast<u32>(std::bit_width(v));
}

/// Number of whole bytes needed to represent `v` without loss (1..4 for
/// nonzero v, 0 for v == 0). Used for adaptive outlier sizing (paper Fig. 8).
constexpr u32 bytesFor(u32 v) {
  if (v == 0) return 0;
  if (v <= 0xFFu) return 1;
  if (v <= 0xFFFFu) return 2;
  if (v <= 0xFFFFFFu) return 3;
  return 4;
}

/// Rounds `n` up to the next multiple of `m` (m > 0).
constexpr usize roundUp(usize n, usize m) { return (n + m - 1) / m * m; }

/// Ceil division.
constexpr usize ceilDiv(usize n, usize d) { return (n + d - 1) / d; }

/// Absolute value of a 32-bit integer as unsigned, defined for INT32_MIN.
constexpr u32 absU32(i32 v) {
  return v < 0 ? static_cast<u32>(0u) - static_cast<u32>(v)
               : static_cast<u32>(v);
}

/// Load/store little-endian unsigned integers of runtime byte width (1..4)
/// from raw byte buffers. The compressed stream is defined little-endian so
/// files are portable across hosts.
inline u32 loadLE(const std::byte* p, u32 nbytes) {
  u32 v = 0;
  for (u32 i = 0; i < nbytes; ++i) {
    v |= static_cast<u32>(std::to_integer<u32>(p[i])) << (8 * i);
  }
  return v;
}

inline void storeLE(std::byte* p, u32 v, u32 nbytes) {
  for (u32 i = 0; i < nbytes; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

/// Type-punning helpers (defined behaviour via memcpy).
template <typename To, typename From>
inline To bitCast(const From& from) {
  static_assert(sizeof(To) == sizeof(From));
  To to;
  std::memcpy(&to, &from, sizeof(To));
  return to;
}

}  // namespace cuszp2
