#include "common/rng.hpp"

#include <bit>
#include <cmath>

namespace cuszp2 {

Rng::Rng(u64 seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

u64 Rng::next() {
  const u64 result = std::rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

f64 Rng::uniform() {
  // 53 high bits -> [0, 1).
  return static_cast<f64>(next() >> 11) * 0x1.0p-53;
}

f64 Rng::uniform(f64 lo, f64 hi) { return lo + (hi - lo) * uniform(); }

u64 Rng::uniformInt(u64 n) {
  if (n == 0) return 0;
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64
  // and determinism matters more than perfect uniformity here.
  return next() % n;
}

f64 Rng::normal() {
  if (hasCached_) {
    hasCached_ = false;
    return cached_;
  }
  f64 u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const f64 u2 = uniform();
  const f64 r = std::sqrt(-2.0 * std::log(u1));
  const f64 theta = 2.0 * 3.14159265358979323846 * u2;
  cached_ = r * std::sin(theta);
  hasCached_ = true;
  return r * std::cos(theta);
}

f64 Rng::normal(f64 mean, f64 stddev) { return mean + stddev * normal(); }

}  // namespace cuszp2
