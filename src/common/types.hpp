// Fundamental type aliases and small POD enums shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace cuszp2 {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;
using usize = std::size_t;

/// Floating-point precision of a dataset field.
enum class Precision : u8 { F32 = 0, F64 = 1 };

/// Lossless encoding mode for a compressed stream (paper Sec. IV-A).
/// Plain  = plain fixed-length encoding (cuSZp2-P).
/// Outlier = outlier fixed-length encoding with per-block selection (cuSZp2-O).
enum class EncodingMode : u8 { Plain = 0, Outlier = 1 };

/// In-block prediction for the quantization integers. FirstOrder is the
/// paper's design (d_i = q_i - q_{i-1}). SecondOrder differences the tail
/// once more — provided as a design-validation ablation: because the
/// block format exempts only one value (r_0) from the fixed length, the
/// second-order residual r_1 = d_1 still pins the fixed length at the
/// first-difference magnitude, so deeper prediction measurably cannot
/// beat first order here. That is structural evidence for the paper's
/// first-order + Outlier-FLE choice.
enum class Predictor : u8 { FirstOrder = 0, SecondOrder = 1 };

constexpr const char* toString(Precision p) {
  return p == Precision::F32 ? "f32" : "f64";
}

constexpr const char* toString(EncodingMode m) {
  return m == EncodingMode::Plain ? "plain" : "outlier";
}

constexpr const char* toString(Predictor p) {
  return p == Predictor::FirstOrder ? "first-order" : "second-order";
}

/// Element byte width for a precision tag.
constexpr usize byteWidth(Precision p) { return p == Precision::F32 ? 4 : 8; }

template <typename T>
concept FloatingPoint = std::is_same_v<T, f32> || std::is_same_v<T, f64>;

template <FloatingPoint T>
constexpr Precision precisionOf() {
  return std::is_same_v<T, f32> ? Precision::F32 : Precision::F64;
}

using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

}  // namespace cuszp2
