// Multi-dimensional cuSZp2 variant (paper Sec. VI-D, Table VI).
//
// Replaces the 1-D first-order difference with 2-D / 3-D Lorenzo prediction
// inside each block; block shapes follow the paper's fair comparison
// (1-D: 64, 2-D: 8x8, 3-D: 4x4x4 — 64 elements each). Prediction never
// crosses block boundaries (out-of-block neighbours are treated as 0), so
// blocks remain independently decodable like the 1-D pipeline.
//
// This variant exists to reproduce the paper's rationale for 1-D
// processing: the ratio gain of 2-D/3-D is real but modest for non-sparse
// data at conservative error bounds, while the irregular access pattern
// would cost over half the throughput.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/compressor.hpp"

namespace cuszp2::core {

struct Dims3 {
  u64 nx = 1;
  u64 ny = 1;
  u64 nz = 1;

  u64 count() const { return nx * ny * nz; }
};

enum class LorenzoDims : u8 { D1 = 1, D2 = 2, D3 = 3 };

constexpr const char* toString(LorenzoDims d) {
  switch (d) {
    case LorenzoDims::D1: return "1D";
    case LorenzoDims::D2: return "2D";
    case LorenzoDims::D3: return "3D";
  }
  return "?";
}

struct NdConfig {
  f64 relErrorBound = 1e-3;
  f64 absErrorBound = 0.0;  // used instead of REL when > 0
  LorenzoDims dims = LorenzoDims::D3;
  EncodingMode mode = EncodingMode::Outlier;
};

struct NdCompressed {
  std::vector<std::byte> stream;
  u64 originalBytes = 0;
  f64 ratio = 0.0;

  /// Modelled kernel profile. The 2-D/3-D variants gather their blocks
  /// through strided row accesses and run extra prediction arithmetic,
  /// which is exactly the >50% throughput penalty the paper cites as the
  /// rationale for 1-D processing (Sec. VI-D).
  KernelProfile profile;
};

class NdCompressor {
 public:
  explicit NdCompressor(NdConfig config,
                        gpusim::DeviceSpec device = gpusim::a100_40gb());

  const NdConfig& config() const { return config_; }

  /// Block shape for the configured dimensionality (paper Table VI).
  void blockShape(u64& bx, u64& by, u64& bz) const;

  template <FloatingPoint T>
  NdCompressed compress(std::span<const T> data, Dims3 dims) const;

  /// Round-trips a stream produced by compress(); returns the field in the
  /// original layout.
  template <FloatingPoint T>
  std::vector<T> decompress(ConstByteSpan stream) const;

 private:
  NdConfig config_;
  gpusim::TimingModel timing_;
  mutable gpusim::Launcher launcher_;
};

}  // namespace cuszp2::core
