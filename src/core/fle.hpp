// Fixed-length bit-plane packing (paper Figs. 7/8).
//
// A block of L absolute quantization differences is stored as `fl` bit
// planes: plane b holds bit b of every element, packed 8 elements per byte.
// The regularity of this layout — every element contributes exactly the
// same number of bits — is what makes the whole pipeline vectorizable
// (Sec. IV-B), in contrast to Huffman or RLE.
#pragma once

#include <span>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace cuszp2::core {

/// Bytes one plane occupies for a block of `blockSize` elements.
constexpr usize planeBytes(u32 blockSize) { return blockSize / 8; }

/// Packs `fl` bit planes of `absVals` (size L, multiple of 8) into `out`,
/// which must hold fl * L/8 bytes. Values must satisfy v < 2^fl.
inline void packPlanes(std::span<const u32> absVals, u32 fl, std::byte* out) {
  const usize L = absVals.size();
  const usize pb = planeBytes(static_cast<u32>(L));
  for (u32 plane = 0; plane < fl; ++plane) {
    std::byte* dst = out + static_cast<usize>(plane) * pb;
    for (usize j = 0; j < pb; ++j) {
      u32 byte = 0;
      const usize base = j * 8;
      for (u32 k = 0; k < 8; ++k) {
        byte |= ((absVals[base + k] >> plane) & 1u) << k;
      }
      dst[j] = static_cast<std::byte>(byte);
    }
  }
}

/// Unpacks `fl` planes from `in` into `absVals` (zeroed first).
inline void unpackPlanes(const std::byte* in, u32 fl,
                         std::span<u32> absVals) {
  const usize L = absVals.size();
  const usize pb = planeBytes(static_cast<u32>(L));
  for (auto& v : absVals) v = 0;
  for (u32 plane = 0; plane < fl; ++plane) {
    const std::byte* src = in + static_cast<usize>(plane) * pb;
    for (usize j = 0; j < pb; ++j) {
      const u32 byte = std::to_integer<u32>(src[j]);
      const usize base = j * 8;
      for (u32 k = 0; k < 8; ++k) {
        absVals[base + k] |= ((byte >> k) & 1u) << plane;
      }
    }
  }
}

/// Packs one sign bit per element (1 = negative) into L/8 bytes.
inline void packSigns(std::span<const i32> diffs, std::byte* out) {
  const usize L = diffs.size();
  for (usize j = 0; j < L / 8; ++j) {
    u32 byte = 0;
    const usize base = j * 8;
    for (u32 k = 0; k < 8; ++k) {
      byte |= (diffs[base + k] < 0 ? 1u : 0u) << k;
    }
    out[j] = static_cast<std::byte>(byte);
  }
}

/// Reads the sign bit of element `i` from a packed sign bitmap.
inline bool signBit(const std::byte* signs, usize i) {
  return (std::to_integer<u32>(signs[i / 8]) >> (i % 8)) & 1u;
}

}  // namespace cuszp2::core
