// Fixed-length bit-plane packing (paper Figs. 7/8).
//
// A block of L absolute quantization differences is stored as `fl` bit
// planes: plane b holds bit b of every element, packed 8 elements per byte.
// The regularity of this layout — every element contributes exactly the
// same number of bits — is what makes the whole pipeline vectorizable
// (Sec. IV-B), in contrast to Huffman or RLE.
#pragma once

#include <span>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace cuszp2::core {

/// Bytes one plane occupies for a block of `blockSize` elements.
constexpr usize planeBytes(u32 blockSize) { return blockSize / 8; }

/// Reference (scalar, plane-outer) packer. Kept as the baseline for
/// bench/micro_primitives before/after rows and for equivalence tests of
/// the tightened kernel below; not used on the hot path.
inline void packPlanesReference(std::span<const u32> absVals, u32 fl,
                                std::byte* out) {
  const usize L = absVals.size();
  const usize pb = planeBytes(static_cast<u32>(L));
  for (u32 plane = 0; plane < fl; ++plane) {
    std::byte* dst = out + static_cast<usize>(plane) * pb;
    for (usize j = 0; j < pb; ++j) {
      u32 byte = 0;
      const usize base = j * 8;
      for (u32 k = 0; k < 8; ++k) {
        byte |= ((absVals[base + k] >> plane) & 1u) << k;
      }
      dst[j] = static_cast<std::byte>(byte);
    }
  }
}

/// Reference (scalar, plane-outer) unpacker; see packPlanesReference.
inline void unpackPlanesReference(const std::byte* in, u32 fl,
                                  std::span<u32> absVals) {
  const usize L = absVals.size();
  const usize pb = planeBytes(static_cast<u32>(L));
  for (auto& v : absVals) v = 0;
  for (u32 plane = 0; plane < fl; ++plane) {
    const std::byte* src = in + static_cast<usize>(plane) * pb;
    for (usize j = 0; j < pb; ++j) {
      const u32 byte = std::to_integer<u32>(src[j]);
      const usize base = j * 8;
      for (u32 k = 0; k < 8; ++k) {
        absVals[base + k] |= ((byte >> k) & 1u) << plane;
      }
    }
  }
}

/// Packs `fl` bit planes of `absVals` (size L, multiple of 8) into `out`,
/// which must hold fl * L/8 bytes. Values must satisfy v < 2^fl.
///
/// Byte-group-outer ordering: the 8 values feeding one output byte column
/// are loaded into registers once and all fl planes are extracted from
/// them branch-free, instead of re-reading every value once per plane as
/// the reference kernel does (fl x fewer loads; the byte assembly is a
/// fixed unrolled or-tree the compiler vectorizes).
inline void packPlanes(std::span<const u32> absVals, u32 fl, std::byte* out) {
  if (simd::packPlanes(absVals, fl, out)) return;
  const usize L = absVals.size();
  const usize pb = planeBytes(static_cast<u32>(L));
  for (usize j = 0; j < pb; ++j) {
    const u32* v = absVals.data() + j * 8;
    const u32 v0 = v[0], v1 = v[1], v2 = v[2], v3 = v[3];
    const u32 v4 = v[4], v5 = v[5], v6 = v[6], v7 = v[7];
    std::byte* dst = out + j;
    for (u32 plane = 0; plane < fl; ++plane) {
      const u32 byte = ((v0 >> plane) & 1u) | (((v1 >> plane) & 1u) << 1) |
                       (((v2 >> plane) & 1u) << 2) |
                       (((v3 >> plane) & 1u) << 3) |
                       (((v4 >> plane) & 1u) << 4) |
                       (((v5 >> plane) & 1u) << 5) |
                       (((v6 >> plane) & 1u) << 6) |
                       (((v7 >> plane) & 1u) << 7);
      dst[static_cast<usize>(plane) * pb] = static_cast<std::byte>(byte);
    }
  }
}

/// Unpacks `fl` planes from `in` into `absVals`. Byte-group-outer like
/// packPlanes: the 8 output values of one column accumulate in registers
/// across all fl plane bytes, with a single store (and no zero-fill pass)
/// at the end.
inline void unpackPlanes(const std::byte* in, u32 fl,
                         std::span<u32> absVals) {
  if (simd::unpackPlanes(in, fl, absVals)) return;
  const usize L = absVals.size();
  const usize pb = planeBytes(static_cast<u32>(L));
  for (usize j = 0; j < pb; ++j) {
    u32 v0 = 0, v1 = 0, v2 = 0, v3 = 0, v4 = 0, v5 = 0, v6 = 0, v7 = 0;
    const std::byte* src = in + j;
    for (u32 plane = 0; plane < fl; ++plane) {
      const u32 byte = std::to_integer<u32>(src[static_cast<usize>(plane) * pb]);
      v0 |= (byte & 1u) << plane;
      v1 |= ((byte >> 1) & 1u) << plane;
      v2 |= ((byte >> 2) & 1u) << plane;
      v3 |= ((byte >> 3) & 1u) << plane;
      v4 |= ((byte >> 4) & 1u) << plane;
      v5 |= ((byte >> 5) & 1u) << plane;
      v6 |= ((byte >> 6) & 1u) << plane;
      v7 |= ((byte >> 7) & 1u) << plane;
    }
    u32* dst = absVals.data() + j * 8;
    dst[0] = v0;
    dst[1] = v1;
    dst[2] = v2;
    dst[3] = v3;
    dst[4] = v4;
    dst[5] = v5;
    dst[6] = v6;
    dst[7] = v7;
  }
}

/// Packs one sign bit per element (1 = negative) into L/8 bytes.
inline void packSigns(std::span<const i32> diffs, std::byte* out) {
  if (simd::packSigns(diffs, out)) return;
  const usize L = diffs.size();
  for (usize j = 0; j < L / 8; ++j) {
    u32 byte = 0;
    const usize base = j * 8;
    for (u32 k = 0; k < 8; ++k) {
      byte |= (diffs[base + k] < 0 ? 1u : 0u) << k;
    }
    out[j] = static_cast<std::byte>(byte);
  }
}

/// Reads the sign bit of element `i` from a packed sign bitmap.
inline bool signBit(const std::byte* signs, usize i) {
  return (std::to_integer<u32>(signs[i / 8]) >> (i % 8)) & 1u;
}

}  // namespace cuszp2::core
