// Reusable compression stream: the zero-allocation hot path.
//
// A CompressorStream owns every piece of per-call state the pipeline needs
// — a scratch arena backing quantization scratch, per-block plans, scan
// flag arrays, tile prefix sums and the payload staging area, plus a
// launcher on the process-shared worker pool — so repeated compress() /
// decompress() calls reuse warm buffers instead of paying malloc/free and
// pool startup per invocation. After one warm-up call at the peak input
// size the arena performs no further heap allocations
// (arenaStats().slabAllocations stays constant; asserted in
// tests/test_stream_reuse.cpp).
//
// The one-shot core::Compressor API is a thin wrapper over a thread-local
// stream (see compressor.hpp); long-lived layers (segmented streaming, the
// archive writer, the allreduce codec, the CLI) hold a stream explicitly.
// Output bytes are identical to the one-shot API in all configurations.
#pragma once

#include <vector>

#include "common/arena.hpp"
#include "core/config.hpp"
#include "core/format.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"

namespace cuszp2::core {

struct KernelProfile {
  gpusim::MemCounters mem;
  gpusim::SyncStats sync;
  gpusim::KernelTiming timing;

  /// Modelled end-to-end time of the API call on the configured device:
  /// the single kernel + launch overhead, plus (only when configured) the
  /// REL-bound range reduction and the checksum pass. There is no PCIe or
  /// CPU stage — that is the point of the paper.
  f64 endToEndSeconds = 0.0;

  /// End-to-end throughput w.r.t. the original data size, the paper's
  /// headline metric (Sec. II).
  f64 endToEndGBps = 0.0;

  /// Host wall-clock seconds of the simulation run (diagnostic only).
  f64 wallSeconds = 0.0;
};

struct Compressed {
  std::vector<std::byte> stream;
  KernelProfile profile;
  u64 originalBytes = 0;
  f64 ratio = 0.0;
};

template <FloatingPoint T>
struct Decompressed {
  std::vector<T> data;
  KernelProfile profile;
};

template <FloatingPoint T>
struct BlockRange {
  /// Index of the first element covered by the decoded range.
  u64 firstElement = 0;
  std::vector<T> values;
  KernelProfile profile;
};

class CompressorStream {
 public:
  explicit CompressorStream(Config config = {},
                            gpusim::DeviceSpec device = gpusim::a100_40gb());

  /// Re-targets the stream without touching its warm scratch. Cheap enough
  /// to call before every operation (the one-shot wrapper does).
  void reconfigure(const Config& config);
  void reconfigure(const Config& config, const gpusim::DeviceSpec& device);

  const Config& config() const { return config_; }
  const gpusim::DeviceSpec& device() const { return timing_.spec(); }

  /// Scratch-arena counters; slabAllocations is constant across calls once
  /// the stream is warm (the zero-allocation steady state).
  const Arena::Stats& arenaStats() const { return arena_.stats(); }

  /// Drops the warm scratch (it is re-grown on the next call). For hosts
  /// that keep many idle streams around.
  void releaseScratch() { arena_.release(); }

  /// Semantics identical to Compressor::compress (byte-identical output).
  template <FloatingPoint T>
  Compressed compress(std::span<const T> data);

  /// Compresses several independent fields through one batched launch
  /// (one latch, one task-submission pass — see Launcher::launchBatch).
  /// Element i of the result is byte-identical to compress(fields[i]).
  template <FloatingPoint T>
  std::vector<Compressed> compressBatch(
      std::span<const std::span<const T>> fields);

  /// Semantics identical to Compressor::decompress.
  template <FloatingPoint T>
  Decompressed<T> decompress(ConstByteSpan stream);

  /// Semantics identical to Compressor::decompressBlocks.
  template <FloatingPoint T>
  BlockRange<T> decompressBlocks(ConstByteSpan stream, u64 firstBlock,
                                 u64 blockCount);

  /// Semantics identical to Compressor::replaceBlocks.
  template <FloatingPoint T>
  Compressed replaceBlocks(ConstByteSpan stream, u64 firstBlock,
                           std::span<const T> values);

 private:
  Config config_;
  gpusim::TimingModel timing_;
  gpusim::Launcher launcher_;
  Arena arena_;
};

}  // namespace cuszp2::core
