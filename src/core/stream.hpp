// Reusable compression stream: the zero-allocation hot path.
//
// A CompressorStream owns every piece of per-call state the pipeline needs
// — a scratch arena backing quantization scratch, per-block plans, scan
// flag arrays, tile prefix sums and the payload staging area, plus a
// launcher on the process-shared worker pool — so repeated compress() /
// decompress() calls reuse warm buffers instead of paying malloc/free and
// pool startup per invocation. After one warm-up call at the peak input
// size the arena performs no further heap allocations
// (arenaStats().slabAllocations stays constant; asserted in
// tests/test_stream_reuse.cpp).
//
// The one-shot core::Compressor API is a thin wrapper over a thread-local
// stream (see compressor.hpp); long-lived layers (segmented streaming, the
// archive writer, the allreduce codec, the CLI) hold a stream explicitly.
// Output bytes are identical to the one-shot API in all configurations.
#pragma once

#include <string>
#include <vector>

#include "common/arena.hpp"
#include "core/config.hpp"
#include "core/format.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"
#include "telemetry/metrics.hpp"

namespace cuszp2::core {

struct KernelProfile {
  gpusim::MemCounters mem;
  gpusim::SyncStats sync;
  gpusim::KernelTiming timing;

  /// Modelled end-to-end time of the API call on the configured device:
  /// the single kernel + launch overhead, plus (only when configured) the
  /// REL-bound range reduction and the checksum pass. There is no PCIe or
  /// CPU stage — that is the point of the paper.
  f64 endToEndSeconds = 0.0;

  /// End-to-end throughput w.r.t. the original data size, the paper's
  /// headline metric (Sec. II).
  f64 endToEndGBps = 0.0;

  /// Host wall-clock seconds of the simulation run (diagnostic only).
  f64 wallSeconds = 0.0;
};

struct Compressed {
  std::vector<std::byte> stream;
  KernelProfile profile;
  u64 originalBytes = 0;
  f64 ratio = 0.0;
};

template <FloatingPoint T>
struct Decompressed {
  std::vector<T> data;
  KernelProfile profile;
};

/// Decompressed elements as raw little-endian bytes — the form batched
/// service decodes consume (the element type is stream-determined, so a
/// fused batch may mix precisions).
struct DecompressedRaw {
  std::vector<std::byte> data;
  u64 elements = 0;
  Precision precision = Precision::F32;
  KernelProfile profile;
};

template <FloatingPoint T>
struct BlockRange {
  /// Index of the first element covered by the decoded range.
  u64 firstElement = 0;
  std::vector<T> values;
  KernelProfile profile;
};

/// Why a block was quarantined by the salvage decoder.
enum class BlockVerdict : u8 {
  Good = 0,
  /// The block's payload (located by the offset-byte prefix sum) runs past
  /// the end of the stream's payload region.
  Truncated,
  /// Version-2 per-block digest mismatch: the offset byte or payload bytes
  /// are damaged.
  ChecksumMismatch,
  /// The block decode itself failed (malformed payload structure).
  DecodeError,
};

constexpr const char* toString(BlockVerdict v) {
  switch (v) {
    case BlockVerdict::Good: return "good";
    case BlockVerdict::Truncated: return "truncated";
    case BlockVerdict::ChecksumMismatch: return "checksum-mismatch";
    default: return "decode-error";
  }
}

/// Outcome of a resilient (salvage) decode: what survived, what was
/// quarantined, and where the damage starts. Returned instead of throwing
/// — strict decompress() keeps the throw-on-corruption behaviour.
struct DecodeReport {
  static constexpr u64 kNoCorruption = ~u64{0};

  /// False when the 40-byte header itself failed to parse; data is then
  /// empty and headerError holds the parse failure.
  bool headerOk = false;
  std::string headerError;

  /// Whole-stream CRC-32 verdict; true when the stream carries none.
  bool streamChecksumOk = true;

  /// True when the stream is version 2+ (per-block digests available, so
  /// quarantine decisions are per-block exact).
  bool blockChecksums = false;

  /// Version-3 dictionary section verdict: false when the section header
  /// or the shared Huffman table failed its CRC or parse. Blocks of
  /// Huffman pipelines are then quarantined (DecodeError) while blocks of
  /// table-free pipelines still decode. Always true for v1/v2 streams.
  bool dictionaryOk = true;

  /// True for version-2 streams whose offset-byte prefix sum + footer do
  /// not land exactly on the end of the stream (truncation or offset-byte
  /// damage; per-block digests then decide which blocks survive).
  bool framingDamaged = false;

  u64 totalBlocks = 0;
  u64 goodBlocks = 0;
  u64 badBlocks = 0;

  /// Stream-relative byte offset where the first quarantined block's
  /// payload begins (kNoCorruption when every block is good).
  u64 firstCorruptOffset = kNoCorruption;

  /// Per-block verdicts, totalBlocks entries.
  std::vector<BlockVerdict> verdicts;

  bool clean() const {
    return headerOk && streamChecksumOk && dictionaryOk && !framingDamaged &&
           badBlocks == 0;
  }
};

/// Result of CompressorStream::decompressResilient. Quarantined blocks'
/// elements hold the caller's fill value; all other elements are bit-exact
/// w.r.t. a clean decode.
template <FloatingPoint T>
struct Salvaged {
  std::vector<T> data;
  DecodeReport report;
  KernelProfile profile;
};

class CompressorStream {
 public:
  explicit CompressorStream(Config config = {},
                            gpusim::DeviceSpec device = gpusim::a100_40gb());

  /// Re-targets the stream without touching its warm scratch. Cheap enough
  /// to call before every operation (the one-shot wrapper does).
  void reconfigure(const Config& config);
  void reconfigure(const Config& config, const gpusim::DeviceSpec& device);

  const Config& config() const { return config_; }
  const gpusim::DeviceSpec& device() const { return timing_.spec(); }

  /// Scratch-arena counters; slabAllocations is constant across calls once
  /// the stream is warm (the zero-allocation steady state).
  const Arena::Stats& arenaStats() const { return arena_.stats(); }

  /// Drops the warm scratch (it is re-grown on the next call). For hosts
  /// that keep many idle streams around.
  void releaseScratch() { arena_.release(); }

  /// Semantics identical to Compressor::compress (byte-identical output).
  template <FloatingPoint T>
  Compressed compress(std::span<const T> data);

  /// Compresses several independent fields through one batched launch
  /// (one latch, one task-submission pass — see Launcher::launchBatch).
  /// Element i of the result is byte-identical to compress(fields[i]).
  template <FloatingPoint T>
  std::vector<Compressed> compressBatch(
      std::span<const std::span<const T>> fields);

  /// Semantics identical to Compressor::decompress.
  template <FloatingPoint T>
  Decompressed<T> decompress(ConstByteSpan stream);

  /// Decompresses several independent streams through one fused launch
  /// (mirrors compressBatch: one latch, one task-submission pass).
  /// Element i's bytes are identical to decompress(streams[i]) output.
  /// Strict semantics: a corrupt stream throws before any kernel runs.
  /// With Config::faultRetries > 0 the per-stream write-digest relaunch
  /// cannot run inside a fused launch, so the call degrades to serial
  /// decompress calls (same results, one launch per stream).
  std::vector<DecompressedRaw> decompressBatchRaw(
      std::span<const ConstByteSpan> streams);

  /// Salvage decode: treats `stream` as untrusted, bounds-checks every
  /// offset/payload access, quarantines blocks that are truncated,
  /// out-of-range, digest-mismatched (version 2) or undecodable, fills
  /// their elements with `fillValue`, and reports instead of throwing.
  /// Never throws on corrupt input: an unparseable header (including a
  /// precision tag that does not match T) yields empty data with
  /// report.headerOk == false.
  template <FloatingPoint T>
  Salvaged<T> decompressResilient(ConstByteSpan stream, T fillValue = T{});

  /// Semantics identical to Compressor::decompressBlocks.
  template <FloatingPoint T>
  BlockRange<T> decompressBlocks(ConstByteSpan stream, u64 firstBlock,
                                 u64 blockCount);

  /// Semantics identical to Compressor::replaceBlocks.
  template <FloatingPoint T>
  Compressed replaceBlocks(ConstByteSpan stream, u64 firstBlock,
                           std::span<const T> values);

  /// Simulated soft errors detected by post-launch write-digest
  /// verification (or aborted launches) since construction; see
  /// Config::faultRetries.
  u64 faultsDetected() const { return faultsDetected_; }

  /// Relaunches performed to absorb detected faults since construction.
  u64 faultRelaunches() const { return faultRelaunches_; }

  /// The stream's launcher — exposed so tests (and fault-drills) can arm a
  /// gpusim::FaultPlan against exactly this stream's kernels.
  gpusim::Launcher& launcher() { return launcher_; }

 private:
  // Format-v3 pipeline paths (stream_v3.cpp). compress() and the decode
  // entry points branch here when Config::pipeline != Legacy or the
  // stream header says version 3; the legacy paths in stream.cpp stay
  // byte-for-byte untouched.
  template <FloatingPoint T>
  Compressed compressV3(std::span<const T> data);
  template <FloatingPoint T>
  Decompressed<T> decompressV3(ConstByteSpan stream,
                               const StreamHeader& header);
  template <FloatingPoint T>
  void salvageV3(ConstByteSpan stream, const StreamHeader& header,
                 T fillValue, Salvaged<T>& out);
  template <FloatingPoint T>
  BlockRange<T> decompressBlocksV3(ConstByteSpan stream,
                                   const StreamHeader& header,
                                   u64 firstBlock, u64 blockCount);
  template <FloatingPoint T>
  Compressed replaceBlocksV3(ConstByteSpan stream,
                             const StreamHeader& header, u64 firstBlock,
                             std::span<const T> values);

  /// Runs a kernel under the detect-and-retry policy: relaunches up to
  /// Config::faultRetries times while `verify` reports corrupt output or
  /// the launch aborts; `rearm` reinitializes scan state between attempts.
  gpusim::LaunchResult launchVerified(
      const gpusim::KernelDesc& desc, std::span<std::byte> faultTarget,
      const std::function<bool()>& verify,
      const std::function<void()>& rearm);

  /// Consumes a pending arena-exhaustion fault from the launcher's
  /// FaultPlan (clearing any budget left by a previous operation): when
  /// one is armed for the next launch, this operation's scratch arena is
  /// capped so its first oversized allocation throws. Called at every
  /// fallible entry point right after arena_.reset(); the salvage path
  /// (decompressResilient) only clears — it must keep its no-throw
  /// contract even under an armed plan.
  void applyInjectedArenaBudget();

  /// Telemetry handles resolved once at construction against the global
  /// registry (see docs/OBSERVABILITY.md for the name catalogue).
  /// Recording through them is lock-free and a single branch when the
  /// registry is disabled, preserving the zero-allocation steady state.
  struct Instruments {
    telemetry::Counter* compressCalls;
    telemetry::Counter* compressBytesIn;
    telemetry::Counter* compressBytesOut;
    telemetry::Counter* decompressCalls;
    telemetry::Counter* decompressBytesIn;
    telemetry::Counter* decompressBytesOut;
    telemetry::Counter* replaceBlocksCalls;
    telemetry::Counter* salvageCalls;
    telemetry::Counter* salvageBadBlocks;
    telemetry::Counter* faultsDetected;
    telemetry::Counter* faultRelaunches;
    telemetry::Gauge* arenaHighWater;
    telemetry::Gauge* lastGBps;
  };

  void noteFaultDetected();
  void noteFaultRelaunch();
  void noteCompressed(const Compressed& out);
  void noteDecompressed(u64 streamBytes, u64 decodedBytes, f64 gbps);

  Config config_;
  gpusim::TimingModel timing_;
  gpusim::Launcher launcher_;
  Arena arena_;
  Instruments instruments_;
  u64 faultsDetected_ = 0;
  u64 faultRelaunches_ = 0;
};

}  // namespace cuszp2::core
