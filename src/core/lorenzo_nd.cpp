#include "core/lorenzo_nd.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "metrics/error_stats.hpp"
#include "scan/lookback.hpp"

namespace cuszp2::core {

namespace {

constexpr u32 kBlockElems = 64;

/// ND residuals sum up to 8 quantization integers, so the integers must be
/// bounded tighter than in the 1-D pipeline to keep residuals within i32.
constexpr i64 kMaxNdQuant = (i64{1} << 27) - 1;

// ND stream header (distinct magic; carries the grid dimensions).
constexpr u64 kNdMagic = 0x32505A43'444E0001ull;

struct NdHeader {
  Precision precision;
  LorenzoDims dims;
  EncodingMode mode;
  Dims3 grid;
  f64 absErrorBound;

  static constexpr usize kBytes = 64;
};

void put64(std::byte* p, u64 v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

u64 get64(const std::byte* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<u64>(std::to_integer<u64>(p[i])) << (8 * i);
  }
  return v;
}

void serializeHeader(const NdHeader& h, std::byte* out) {
  put64(out + 0, kNdMagic);
  u64 meta = static_cast<u64>(static_cast<u8>(h.precision));
  meta |= static_cast<u64>(static_cast<u8>(h.dims)) << 8;
  meta |= static_cast<u64>(static_cast<u8>(h.mode)) << 16;
  put64(out + 8, meta);
  put64(out + 16, h.grid.nx);
  put64(out + 24, h.grid.ny);
  put64(out + 32, h.grid.nz);
  put64(out + 40, bitCast<u64>(h.absErrorBound));
  put64(out + 48, 0);
  put64(out + 56, 0);
}

NdHeader parseHeader(ConstByteSpan stream) {
  require(stream.size() >= NdHeader::kBytes, "NdCompressor: truncated stream");
  require(get64(stream.data()) == kNdMagic, "NdCompressor: bad magic");
  const u64 meta = get64(stream.data() + 8);
  NdHeader h{};
  const u8 prec = static_cast<u8>(meta & 0xFFu);
  require(prec <= 1, "NdCompressor: invalid precision tag");
  h.precision = static_cast<Precision>(prec);
  const u8 dims = static_cast<u8>((meta >> 8) & 0xFFu);
  require(dims >= 1 && dims <= 3, "NdCompressor: invalid dims tag");
  h.dims = static_cast<LorenzoDims>(dims);
  const u8 mode = static_cast<u8>((meta >> 16) & 0xFFu);
  require(mode <= 1, "NdCompressor: invalid mode tag");
  h.mode = static_cast<EncodingMode>(mode);
  h.grid.nx = get64(stream.data() + 16);
  h.grid.ny = get64(stream.data() + 24);
  h.grid.nz = get64(stream.data() + 32);
  require(h.grid.count() > 0, "NdCompressor: empty grid");
  h.absErrorBound = bitCast<f64>(get64(stream.data() + 40));
  require(h.absErrorBound > 0.0, "NdCompressor: invalid error bound");
  return h;
}

void shapeFor(LorenzoDims d, u64& bx, u64& by, u64& bz) {
  switch (d) {
    case LorenzoDims::D1: bx = 64; by = 1; bz = 1; break;
    case LorenzoDims::D2: bx = 8; by = 8; bz = 1; break;
    case LorenzoDims::D3: bx = 4; by = 4; bz = 4; break;
  }
}

/// In-block forward Lorenzo prediction; neighbours outside the block are 0.
/// `q` and `r` are (bz, by, bx) row-major with x fastest.
void forwardLorenzo(LorenzoDims d, std::span<const i32> q, std::span<i32> r,
                    u64 bx, u64 by, u64 bz) {
  auto at = [&](std::span<const i32> a, i64 i, i64 j, i64 k) -> i32 {
    if (i < 0 || j < 0 || k < 0) return 0;
    return a[(static_cast<u64>(k) * by + static_cast<u64>(j)) * bx +
             static_cast<u64>(i)];
  };
  for (u64 k = 0; k < bz; ++k) {
    for (u64 j = 0; j < by; ++j) {
      for (u64 i = 0; i < bx; ++i) {
        const i64 ii = static_cast<i64>(i);
        const i64 jj = static_cast<i64>(j);
        const i64 kk = static_cast<i64>(k);
        i32 pred = 0;
        switch (d) {
          case LorenzoDims::D1:
            pred = at(q, ii - 1, jj, kk);
            break;
          case LorenzoDims::D2:
            pred = at(q, ii - 1, jj, kk) + at(q, ii, jj - 1, kk) -
                   at(q, ii - 1, jj - 1, kk);
            break;
          case LorenzoDims::D3:
            pred = at(q, ii - 1, jj, kk) + at(q, ii, jj - 1, kk) +
                   at(q, ii, jj, kk - 1) - at(q, ii - 1, jj - 1, kk) -
                   at(q, ii - 1, jj, kk - 1) - at(q, ii, jj - 1, kk - 1) +
                   at(q, ii - 1, jj - 1, kk - 1);
            break;
        }
        r[(k * by + j) * bx + i] = at(q, ii, jj, kk) - pred;
      }
    }
  }
}

/// Inverse of forwardLorenzo: reconstructs q in raster order.
void inverseLorenzo(LorenzoDims d, std::span<const i32> r, std::span<i32> q,
                    u64 bx, u64 by, u64 bz) {
  auto at = [&](std::span<const i32> a, i64 i, i64 j, i64 k) -> i32 {
    if (i < 0 || j < 0 || k < 0) return 0;
    return a[(static_cast<u64>(k) * by + static_cast<u64>(j)) * bx +
             static_cast<u64>(i)];
  };
  for (u64 k = 0; k < bz; ++k) {
    for (u64 j = 0; j < by; ++j) {
      for (u64 i = 0; i < bx; ++i) {
        const i64 ii = static_cast<i64>(i);
        const i64 jj = static_cast<i64>(j);
        const i64 kk = static_cast<i64>(k);
        i32 pred = 0;
        switch (d) {
          case LorenzoDims::D1:
            pred = at(q, ii - 1, jj, kk);
            break;
          case LorenzoDims::D2:
            pred = at(q, ii - 1, jj, kk) + at(q, ii, jj - 1, kk) -
                   at(q, ii - 1, jj - 1, kk);
            break;
          case LorenzoDims::D3:
            pred = at(q, ii - 1, jj, kk) + at(q, ii, jj - 1, kk) +
                   at(q, ii, jj, kk - 1) - at(q, ii - 1, jj - 1, kk) -
                   at(q, ii - 1, jj, kk - 1) - at(q, ii, jj - 1, kk - 1) +
                   at(q, ii - 1, jj - 1, kk - 1);
            break;
        }
        q[(k * by + j) * bx + i] = r[(k * by + j) * bx + i] + pred;
      }
    }
  }
}

}  // namespace

NdCompressor::NdCompressor(NdConfig config, gpusim::DeviceSpec device)
    : config_(config), timing_(std::move(device)), launcher_() {
  require(config_.relErrorBound > 0.0 || config_.absErrorBound > 0.0,
          "NdCompressor: an error bound must be positive");
}

void NdCompressor::blockShape(u64& bx, u64& by, u64& bz) const {
  shapeFor(config_.dims, bx, by, bz);
}

template <FloatingPoint T>
NdCompressed NdCompressor::compress(std::span<const T> data,
                                    Dims3 dims) const {
  require(data.size() == dims.count(),
          "NdCompressor::compress: data size does not match dims");
  require(!data.empty(), "NdCompressor::compress: empty input");

  f64 absEb = config_.absErrorBound;
  if (absEb <= 0.0) {
    absEb = Quantizer::absFromRel(config_.relErrorBound,
                                  metrics::valueRange(data));
  }
  const Quantizer quantizer(absEb);

  // Quantize the whole field once (fused into the kernel on a real
  // device; traffic is charged inside the launch below).
  std::vector<i32> field(data.size());
  for (usize e = 0; e < data.size(); ++e) {
    field[e] = quantizer.quantize(data[e]);
    require(field[e] >= -kMaxNdQuant && field[e] <= kMaxNdQuant,
            "NdCompressor: error bound too small for ND residual range");
  }

  u64 bx = 0;
  u64 by = 0;
  u64 bz = 0;
  shapeFor(config_.dims, bx, by, bz);
  const u64 gx = (dims.nx + bx - 1) / bx;
  const u64 gy = (dims.ny + by - 1) / by;
  const u64 gz = (dims.nz + bz - 1) / bz;
  const u64 numBlocks = gx * gy * gz;
  constexpr u32 kBlocksPerTile = 64;
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + kBlocksPerTile - 1) / kBlocksPerTile));

  NdHeader header{precisionOf<T>(), config_.dims, config_.mode, dims, absEb};
  NdCompressed out;
  out.originalBytes = data.size() * sizeof(T);
  out.stream.assign(NdHeader::kBytes + numBlocks +
                        numBlocks * maxPayloadSize(kBlockElems),
                    std::byte{0});
  serializeHeader(header, out.stream.data());
  std::byte* offsets = out.stream.data() + NdHeader::kBytes;
  std::byte* payloadOut = offsets + numBlocks;

  const BlockCodec codec(kBlockElems);
  scan::LookbackState lookback(tiles);
  std::vector<u64> tileInclusive(tiles, 0);
  const bool strided = config_.dims != LorenzoDims::D1;
  // Extra prediction arithmetic: 2-D touches 3 neighbours, 3-D touches 7.
  const u64 opsPerElem =
      8 + (config_.dims == LorenzoDims::D2
               ? 6
               : (config_.dims == LorenzoDims::D3 ? 14 : 0));

  const auto launch = launcher_.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * kBlocksPerTile;
    const u64 lastBlock = std::min(numBlocks, firstBlock + kBlocksPerTile);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    std::vector<std::byte> scratch(static_cast<usize>(blocksHere) *
                                   maxPayloadSize(kBlockElems));
    std::vector<i32> q(kBlockElems);
    std::vector<i32> r(kBlockElems);
    u64 aggregate = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const u64 xi = blk % gx;
      const u64 yj = (blk / gx) % gy;
      const u64 zk = blk / (gx * gy);
      // Gather with clamped coordinates (padding repeats edge values, so
      // its residuals are zero and decoding simply discards them).
      for (u64 k = 0; k < bz; ++k) {
        for (u64 j = 0; j < by; ++j) {
          for (u64 i = 0; i < bx; ++i) {
            const u64 x = std::min(dims.nx - 1, xi * bx + i);
            const u64 y = std::min(dims.ny - 1, yj * by + j);
            const u64 z = std::min(dims.nz - 1, zk * bz + k);
            q[(k * by + j) * bx + i] =
                field[(z * dims.ny + y) * dims.nx + x];
          }
        }
      }
      forwardLorenzo(config_.dims, q, r, bx, by, bz);
      const BlockPlan plan = codec.planResiduals(r, config_.mode);
      offsets[blk] = static_cast<std::byte>(plan.header.pack());
      codec.encodeResiduals(
          r, plan,
          scratch.data() + (blk - firstBlock) * maxPayloadSize(kBlockElems));
      aggregate += plan.payloadBytes;
    }

    // Block gathers: 1-D blocks are contiguous (vectorizable); 2-D/3-D
    // blocks span strided rows — the access-pattern cost of Sec. VI-D.
    const u64 gatherBytes =
        static_cast<u64>(blocksHere) * kBlockElems * sizeof(T);
    if (strided) {
      ctx.mem.noteStridedRead(gatherBytes, sizeof(T));
    } else {
      ctx.mem.noteVectorRead(gatherBytes, 32);
    }
    ctx.mem.noteScalarWrite(blocksHere, 1, 32);
    ctx.mem.noteOps(static_cast<u64>(blocksHere) * kBlockElems * opsPerElem *
                    2);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * kBlockElems * 12);

    const u64 base =
        lookback.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);
    tileInclusive[ctx.blockIdx] = base + aggregate;

    u64 cursor = base;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h = BlockHeader::unpack(std::to_integer<u8>(offsets[blk]));
      const usize size = payloadSize(h, kBlockElems);
      std::copy_n(
          scratch.data() + (blk - firstBlock) * maxPayloadSize(kBlockElems),
          size, payloadOut + cursor);
      cursor += size;
    }
    ctx.mem.noteVectorWrite(aggregate, 32);
  });

  const u64 totalPayload = tileInclusive[tiles - 1];
  out.stream.resize(NdHeader::kBytes + numBlocks + totalPayload);
  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile.mem = launch.mem;
  out.profile.sync = launch.sync;
  out.profile.timing = timing_.kernel(launch.mem, launch.sync);
  out.profile.endToEndSeconds = out.profile.timing.totalSeconds;
  out.profile.endToEndGBps =
      gpusim::gbps(out.originalBytes, out.profile.endToEndSeconds);
  out.profile.wallSeconds = launch.wallSeconds;
  return out;
}

template <FloatingPoint T>
std::vector<T> NdCompressor::decompress(ConstByteSpan stream) const {
  const NdHeader header = parseHeader(stream);
  require(header.precision == precisionOf<T>(),
          "NdCompressor::decompress: precision mismatch");

  u64 bx = 0;
  u64 by = 0;
  u64 bz = 0;
  shapeFor(header.dims, bx, by, bz);
  const Dims3 dims = header.grid;
  const u64 gx = (dims.nx + bx - 1) / bx;
  const u64 gy = (dims.ny + by - 1) / by;
  const u64 gz = (dims.nz + bz - 1) / bz;
  const u64 numBlocks = gx * gy * gz;
  require(stream.size() >= NdHeader::kBytes + numBlocks,
          "NdCompressor::decompress: truncated offset array");

  const std::byte* offsets = stream.data() + NdHeader::kBytes;
  const std::byte* payload = offsets + numBlocks;
  const usize payloadAvail = stream.size() - NdHeader::kBytes - numBlocks;

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(kBlockElems);
  std::vector<T> out(dims.count());
  std::vector<i32> q(kBlockElems);
  std::vector<i32> r(kBlockElems);

  usize cursor = 0;
  u64 blk = 0;
  for (u64 zk = 0; zk < gz; ++zk) {
    for (u64 yj = 0; yj < gy; ++yj) {
      for (u64 xi = 0; xi < gx; ++xi, ++blk) {
        const auto h = BlockHeader::unpack(std::to_integer<u8>(offsets[blk]));
        const usize size = payloadSize(h, kBlockElems);
        require(cursor + size <= payloadAvail,
                "NdCompressor::decompress: truncated payload");
        codec.decodeResiduals(h, payload + cursor, r);
        cursor += size;
        inverseLorenzo(header.dims, r, q, bx, by, bz);
        for (u64 k = 0; k < bz; ++k) {
          for (u64 j = 0; j < by; ++j) {
            for (u64 i = 0; i < bx; ++i) {
              const u64 x = xi * bx + i;
              const u64 y = yj * by + j;
              const u64 z = zk * bz + k;
              if (x >= dims.nx || y >= dims.ny || z >= dims.nz) continue;
              out[(z * dims.ny + y) * dims.nx + x] =
                  quantizer.dequantize<T>(q[(k * by + j) * bx + i]);
            }
          }
        }
      }
    }
  }
  return out;
}

template NdCompressed NdCompressor::compress<f32>(std::span<const f32>,
                                                  Dims3) const;
template NdCompressed NdCompressor::compress<f64>(std::span<const f64>,
                                                  Dims3) const;
template std::vector<f32> NdCompressor::decompress<f32>(ConstByteSpan) const;
template std::vector<f64> NdCompressor::decompress<f64>(ConstByteSpan) const;

}  // namespace cuszp2::core
