#include "core/format.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace cuszp2::core {

namespace {

void put64(std::byte* p, u64 v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

u64 get64(const std::byte* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<u64>(std::to_integer<u64>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

u16 blockDigest(std::byte offsetByte, ConstByteSpan payload) {
  const u32 seeded = crc32(ConstByteSpan(&offsetByte, 1));
  return static_cast<u16>(crc32(payload, seeded) & 0xFFFFu);
}

u16 blockDigestV3(ConstByteSpan descriptor, ConstByteSpan payload) {
  const u32 seeded = crc32(descriptor);
  return static_cast<u16>(crc32(payload, seeded) & 0xFFFFu);
}

void StreamHeader::serialize(std::byte* out) const {
  put64(out + 0, kMagic);
  u64 meta = 0;
  meta |= static_cast<u64>(version);
  meta |= static_cast<u64>(static_cast<u8>(precision)) << 8;
  meta |= static_cast<u64>(static_cast<u8>(mode)) << 16;
  meta |= static_cast<u64>(static_cast<u8>(predictor)) << 24;
  meta |= static_cast<u64>(blockSize) << 32;
  put64(out + 8, meta);
  put64(out + 16, numElements);
  put64(out + 24, bitCast<u64>(absErrorBound));
  // Bytes [36, 40) carry the version-3 dictionary size; versions 1/2 keep
  // dictBytes == 0, so their serialized bytes are exactly the historical
  // reserved zeros.
  put64(out + 32, static_cast<u64>(checksum) |
                      (static_cast<u64>(dictBytes) << 32));
}

StreamHeader StreamHeader::parse(ConstByteSpan stream) {
  require(stream.size() >= kBytes, "StreamHeader: truncated stream");
  require(get64(stream.data()) == kMagic,
          "StreamHeader: bad magic (not a cuSZp2 stream)");
  const u64 meta = get64(stream.data() + 8);
  const u32 version = static_cast<u32>(meta & 0xFFu);
  require(version == kFormatVersion || version == kFormatVersionV2 ||
              version == kFormatVersionV3,
          "StreamHeader: unsupported format version");

  StreamHeader h;
  h.version = version;
  const u8 prec = static_cast<u8>((meta >> 8) & 0xFFu);
  require(prec <= 1, "StreamHeader: invalid precision tag");
  h.precision = static_cast<Precision>(prec);
  const u8 mode = static_cast<u8>((meta >> 16) & 0xFFu);
  require(mode <= 1, "StreamHeader: invalid mode tag");
  h.mode = static_cast<EncodingMode>(mode);
  const u8 predictor = static_cast<u8>((meta >> 24) & 0xFFu);
  require(predictor <= 1, "StreamHeader: invalid predictor tag");
  h.predictor = static_cast<Predictor>(predictor);
  h.blockSize = static_cast<u32>(meta >> 32);
  require(h.blockSize >= 8 && h.blockSize <= 256 && h.blockSize % 8 == 0,
          "StreamHeader: invalid block size");
  h.numElements = get64(stream.data() + 16);
  h.absErrorBound = bitCast<f64>(get64(stream.data() + 24));
  require(h.absErrorBound > 0.0, "StreamHeader: invalid error bound");
  const u64 tail = get64(stream.data() + 32);
  h.checksum = static_cast<u32>(tail);
  h.dictBytes = static_cast<u32>(tail >> 32);
  if (version < kFormatVersionV3) {
    require(h.dictBytes == 0,
            "StreamHeader: reserved bytes are nonzero in a pre-v3 stream");
  } else {
    // A v3 block costs at least 1 descriptor + 2 footer bytes; bounding
    // the block count by the stream size (division, no multiply) keeps
    // the size arithmetic below overflow-free on hostile headers.
    require(h.numBlocks() <= (stream.size() - kBytes) / 3,
            "StreamHeader: block count exceeds the stream size");
    require(h.numBlocks() == 0 ? h.dictBytes == 0 : h.dictBytes >= 8,
            "StreamHeader: invalid dictionary section size");
  }
  require(stream.size() >= h.payloadBegin() + h.footerBytes(),
          "StreamHeader: stream shorter than its offset array and footer");
  return h;
}

std::optional<StreamHeader> StreamHeader::tryParse(ConstByteSpan stream,
                                                   std::string* error) {
  try {
    return parse(stream);
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace cuszp2::core
