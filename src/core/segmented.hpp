// Bounded-memory streaming compression.
//
// Inline-compression deployments (the paper's LCLS stream-reduction and
// gradient-exchange scenarios) produce data continuously; holding a whole
// field is often impossible. SegmentedCompressor buffers appended values
// and flushes an independent cuSZp2 stream every `segmentElems` elements,
// so peak memory is one segment and any segment can later be decoded on
// its own (coarse-grained random access on top of the format's block-level
// access). SegmentedReader walks the resulting container.
//
// Container layout (little-endian):
//   [magic u64][version u32][reserved u32]
//   [nominal segment elements u64][segment count u64]
//   [stream byte length u64 per segment]
//   concatenated cuSZp2 streams
//
// Note on REL bounds: with a value-range-relative bound, each segment is
// bounded against its own range (the stream arrives incrementally, so no
// global range exists). Configure absErrorBound for a uniform bound.
#pragma once

#include <vector>

#include "core/stream.hpp"

namespace cuszp2::core {

template <FloatingPoint T>
class SegmentedCompressor {
 public:
  /// `segmentElems` is the flush granularity (must be positive).
  SegmentedCompressor(Config config, usize segmentElems,
                      gpusim::DeviceSpec device = gpusim::a100_40gb());

  /// Buffers values; compresses and stores a segment each time the buffer
  /// reaches the segment size.
  void append(std::span<const T> values);

  /// Flushes any buffered remainder and serializes the container. The
  /// compressor is reset and reusable afterwards.
  std::vector<std::byte> finish();

  /// Segments flushed so far (not counting the unflushed remainder).
  usize segmentsFlushed() const { return segments_.size(); }

  /// Elements appended so far.
  u64 totalElements() const { return totalElems_; }

  /// Sum of flushed compressed bytes so far.
  usize compressedBytes() const;

 private:
  void flushSegment();

  // A long-lived stream: every flushed segment reuses the same scratch
  // arena and the shared worker pool instead of paying per-flush setup.
  CompressorStream stream_;
  usize segmentElems_;
  std::vector<T> buffer_;
  std::vector<std::vector<std::byte>> segments_;
  u64 totalElems_ = 0;
};

template <FloatingPoint T>
class SegmentedReader {
 public:
  /// Parses the container's table of contents; the bytes must outlive the
  /// reader.
  explicit SegmentedReader(ConstByteSpan container,
                           gpusim::DeviceSpec device = gpusim::a100_40gb());

  usize segmentCount() const { return entries_.size(); }
  u64 totalElements() const { return totalElems_; }

  /// Elements stored in one segment.
  usize segmentElements(usize index) const;

  /// Decodes one segment.
  std::vector<T> segment(usize index) const;

  /// Salvage decode of one segment: quarantined blocks are filled with
  /// `fillValue` and reported instead of throwing (see
  /// CompressorStream::decompressResilient).
  Salvaged<T> segmentResilient(usize index, T fillValue = T{}) const;

  /// Decodes the full stream in order.
  std::vector<T> all() const;

 private:
  struct Entry {
    usize offset;
    usize length;
    u64 elements;
  };
  ConstByteSpan container_;
  // mutable: segment() is logically const but reuses the stream's scratch.
  mutable CompressorStream stream_;
  std::vector<Entry> entries_;
  u64 totalElems_ = 0;
};

extern template class SegmentedCompressor<f32>;
extern template class SegmentedCompressor<f64>;
extern template class SegmentedReader<f32>;
extern template class SegmentedReader<f64>;

}  // namespace cuszp2::core
