// Lossy conversion (paper step 1, Fig. 4/5): floating-point values become
// quantization integers q = round(v / (2*eb)); reconstruction is q * 2*eb,
// guaranteeing |v - v'| <= eb. This is the only lossy step; both single and
// double precision funnel into the same integer pipeline, which is why
// cuSZp2 processes f64 at ~2x the GB/s of f32 (Sec. VI-A).
#pragma once

#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace cuszp2::core {

/// Quantization integers are bounded so that first-order differences of two
/// valid integers always fit in i32 (|q| < 2^30 => |q_i - q_{i-1}| < 2^31).
inline constexpr i64 kMaxQuant = (i64{1} << 30) - 1;

/// The paper's lossy conversion admits "a rounding (or ceiling)
/// operation": Nearest gives |v - v'| <= eb; Ceiling gives a one-sided
/// error in (-2eb, 0] (v' >= v never undershoots), which some consumers
/// (e.g. conservative bounds in AMR refinement) prefer.
enum class RoundingMode : u8 { Nearest = 0, Ceiling = 1 };

class Quantizer {
 public:
  /// `absErrorBound` must be positive.
  explicit Quantizer(f64 absErrorBound,
                     RoundingMode rounding = RoundingMode::Nearest)
      : eb_(absErrorBound), rounding_(rounding) {
    require(absErrorBound > 0.0, "Quantizer: error bound must be positive");
    recip_ = 1.0 / (2.0 * eb_);
    twoEb_ = 2.0 * eb_;
  }

  f64 errorBound() const { return eb_; }
  RoundingMode rounding() const { return rounding_; }
  /// Precomputed 1/(2*eb) and 2*eb, exposed so the SIMD fast paths perform
  /// the exact same IEEE operations as quantize()/dequantize().
  f64 recip() const { return recip_; }
  f64 twoEb() const { return twoEb_; }

  /// Quantizes one value; throws if the value is not finite (NaN/inf have
  /// no error-bounded representation) or if the integer would exceed the
  /// representable range (error bound too small for this data).
  template <FloatingPoint T>
  i32 quantize(T v) const {
    const f64 scaled = static_cast<f64>(v) * recip_;
    require(std::isfinite(scaled),
            "Quantizer: non-finite value (NaN/inf) cannot be "
            "error-bounded");
    const i64 q = rounding_ == RoundingMode::Nearest
                      ? roundHalfAway(scaled)
                      : static_cast<i64>(std::ceil(scaled));
    require(q >= -kMaxQuant && q <= kMaxQuant,
            "Quantizer: value/error-bound ratio exceeds the 2^30 "
            "quantization range; use a larger error bound");
    return static_cast<i32>(q);
  }

  /// llround semantics (round half away from zero) without the libm call,
  /// which dominates the compress hot loop. `scaled - trunc(scaled)` is
  /// exact in IEEE arithmetic, so the half-way comparison matches llround
  /// bit-for-bit — including edge cases like 0.49999999999999994, which a
  /// naive `(i64)(x + 0.5)` rounds wrongly. trunc compiles to a single
  /// rounding instruction on every targeted ISA.
  static i64 roundHalfAway(f64 scaled) {
    // Magnitudes beyond the quantization range cannot pass the kMaxQuant
    // check anyway; saturate before the float->int cast to keep the cast
    // defined (the caller's range `require` then fires as before).
    if (scaled > 2.0e9) return kMaxQuant + 1;
    if (scaled < -2.0e9) return -(kMaxQuant + 1);
    const f64 t = std::trunc(scaled);
    const f64 frac = scaled - t;
    return static_cast<i64>(t) + (frac >= 0.5 ? i64{1} : i64{0}) -
           (frac <= -0.5 ? i64{1} : i64{0});
  }

  /// Reconstructs a value from its quantization integer.
  template <FloatingPoint T>
  T dequantize(i32 q) const {
    return static_cast<T>(static_cast<f64>(q) * twoEb_);
  }

  /// Derives the absolute bound from a value-range-relative bound
  /// ("REL lambda" in the paper): abs = lambda * (max - min). A degenerate
  /// (constant) field gets a tiny positive bound so compression remains
  /// well-defined.
  static f64 absFromRel(f64 rel, f64 valueRange) {
    require(rel > 0.0, "Quantizer: REL bound must be positive");
    const f64 abs = rel * valueRange;
    return abs > 0.0 ? abs : rel;
  }

 private:
  f64 eb_;
  RoundingMode rounding_;
  f64 recip_;
  f64 twoEb_;
};

/// Fused lossy conversion + first-order prediction over one block: a single
/// pass computes r_i = q_i - q_{i-1} (q_{-1} = 0) instead of materializing
/// the quantization integers and differencing them in a second sweep. The
/// tail [values.size(), residuals.size()) is zero-filled, matching the
/// padded-then-differenced layout of the unfused pipeline (padding repeats
/// the last value, so its differences are zero).
template <FloatingPoint T>
inline void quantizeDiffBlock(const Quantizer& quantizer,
                              std::span<const T> values,
                              std::span<i32> residuals) {
  i32 prev = 0;
  usize i = 0;
  // Vector fast path (Nearest rounding only — Ceiling is off the hot
  // path). A lane fault (non-finite or out-of-range value) restarts the
  // scalar loop from element 0 so the thrown diagnostic is exactly the
  // scalar one; otherwise the scalar loop just finishes the tail.
  if (quantizer.rounding() == RoundingMode::Nearest) {
    const usize done = simd::quantizeDiffPrefix(quantizer.recip(), values,
                                                residuals.data(), &prev);
    if (done == simd::kLaneFault) {
      prev = 0;
    } else {
      i = done;
    }
  }
  for (; i < values.size(); ++i) {
    const i32 cur = quantizer.quantize(values[i]);
    residuals[i] = cur - prev;
    prev = cur;
  }
  for (usize j = values.size(); j < residuals.size(); ++j) residuals[j] = 0;
}

}  // namespace cuszp2::core
