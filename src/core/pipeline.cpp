#include "core/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "entropy/huffman.hpp"

namespace cuszp2::core {

namespace {

void put16(std::byte* p, u16 v) {
  p[0] = static_cast<std::byte>(v & 0xFFu);
  p[1] = static_cast<std::byte>(v >> 8);
}

u16 get16(const std::byte* p) {
  return static_cast<u16>(std::to_integer<u16>(p[0]) |
                          (std::to_integer<u16>(p[1]) << 8));
}

void put32(std::byte* p, u32 v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

u32 get32(const std::byte* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::to_integer<u32>(p[i]) << (8 * i);
  }
  return v;
}

/// MSB-first bit packer over a caller-provided byte region (the region
/// must be zeroed for the bits to OR in cleanly).
struct MsbBitWriter {
  std::byte* out;
  usize bitPos = 0;

  void writeCode(u32 code, u8 len) {
    for (i32 b = len - 1; b >= 0; --b) {
      if ((code >> b) & 1u) {
        out[bitPos >> 3] |= static_cast<std::byte>(0x80u >> (bitPos & 7));
      }
      ++bitPos;
    }
  }
};

u32 escapeCount(std::span<const u16> symbols) {
  u32 escapes = 0;
  for (u16 s : symbols) {
    if (s == kEscapeSymbol) ++escapes;
  }
  return escapes;
}

}  // namespace

std::span<const BlockPipeline> pipelineTable() {
  static constexpr BlockPipeline kTable[kPipelineCount] = {
      {PipelineId::Fle, PredictStage::Delta1, EncodeStage::Fle, "fle"},
      {PipelineId::Huffman, PredictStage::Delta1, EncodeStage::Huffman,
       "huffman"},
      {PipelineId::Rle, PredictStage::Delta1, EncodeStage::Rle, "rle"},
      {PipelineId::LorenzoFle, PredictStage::Lorenzo2D, EncodeStage::Fle,
       "lorenzo-fle"},
  };
  return kTable;
}

void V3BlockDesc::pack(std::byte* out) const {
  u8 b = 0;
  switch (pipeline) {
    case PipelineId::Fle:
      b = offsetByte;  // legacy offset byte, never lands in 0x20-0x7F
      break;
    case PipelineId::Huffman:
      b = 0x20;
      break;
    case PipelineId::Rle:
      b = 0x40;
      break;
    default:  // LorenzoFle: Plain-FLE offset byte, fl fits the low 5 bits
      b = static_cast<u8>(0x60 | (offsetByte & 0x1F));
      break;
  }
  out[0] = static_cast<std::byte>(b);
}

V3BlockDesc V3BlockDesc::unpack(const std::byte* in) {
  const u8 b = std::to_integer<u8>(in[0]);
  V3BlockDesc d;
  if (b < 0x20 || b >= 0x80) {
    d.pipeline = PipelineId::Fle;
    d.offsetByte = b;
  } else if (b == 0x20) {
    d.pipeline = PipelineId::Huffman;
  } else if (b == 0x40) {
    d.pipeline = PipelineId::Rle;
  } else if ((b & 0xE0) == 0x60) {
    d.pipeline = PipelineId::LorenzoFle;
    d.offsetByte = static_cast<u8>(b & 0x1F);  // Plain-FLE pack of fl
  } else {
    // 0x21-0x3F / 0x41-0x5F: reserved; keep the raw byte as the (invalid)
    // id so salvage diagnostics can show it.
    d.pipeline = static_cast<PipelineId>(b);
  }
  return d;
}

usize V3BlockDesc::payloadBytes(const PayloadSizeTable& psize,
                                const std::byte* payload,
                                usize remaining) const {
  switch (pipeline) {
    case PipelineId::Fle:
    case PipelineId::LorenzoFle:
      return psize[static_cast<std::byte>(offsetByte)];
    case PipelineId::Huffman:
    case PipelineId::Rle:
      if (remaining < kV3EntropyPrefixBytes) return kV3EntropyPrefixBytes;
      return kV3EntropyPrefixBytes + get16(payload);
    default:
      return 0;  // unknown pipeline: no framing info, block is quarantined
  }
}

// ---- shared Huffman dictionary ------------------------------------------

HuffTable HuffTable::fromFrequencies(std::span<const u64> freq) {
  HuffTable t;
  t.lengths = entropy::HuffmanCodec::codeLengthsFromFrequencies(freq);
  t.codes = entropy::HuffmanCodec::canonicalCodes(t.lengths);
  return t;
}

usize HuffTable::serializedBytes() const {
  usize used = 0;
  for (u8 l : lengths) {
    if (l > 0) ++used;
  }
  return 2 + used * 3;
}

void HuffTable::serialize(std::byte* out) const {
  usize used = 0;
  for (u8 l : lengths) {
    if (l > 0) ++used;
  }
  put16(out, static_cast<u16>(used));
  std::byte* p = out + 2;
  for (usize s = 0; s < lengths.size(); ++s) {
    if (lengths[s] == 0) continue;
    put16(p, static_cast<u16>(s));
    p[2] = static_cast<std::byte>(lengths[s]);
    p += 3;
  }
}

HuffTable HuffTable::parse(ConstByteSpan bytes) {
  require(bytes.size() >= 2, "HuffTable: truncated table header");
  const u16 used = get16(bytes.data());
  require(bytes.size() == 2 + static_cast<usize>(used) * 3,
          "HuffTable: table size does not match its entry count");
  require(used <= kSymbolAlphabet, "HuffTable: too many table entries");

  HuffTable t;
  t.lengths.assign(kSymbolAlphabet, 0);
  i32 prevSymbol = -1;
  u8 maxLen = 0;
  for (u16 i = 0; i < used; ++i) {
    const std::byte* e = bytes.data() + 2 + static_cast<usize>(i) * 3;
    const u16 sym = get16(e);
    const u8 len = std::to_integer<u8>(e[2]);
    require(sym < kSymbolAlphabet, "HuffTable: symbol out of alphabet");
    require(static_cast<i32>(sym) > prevSymbol,
            "HuffTable: symbols not strictly increasing");
    require(len >= 1 && len <= 32, "HuffTable: invalid code length");
    t.lengths[sym] = len;
    prevSymbol = sym;
    maxLen = std::max(maxLen, len);
  }
  // Kraft inequality: a table violating it would assign overlapping
  // canonical codes and the decoder could mis-resolve corrupt payloads
  // instead of rejecting them.
  if (used > 1) {
    u64 kraft = 0;
    for (u8 l : t.lengths) {
      if (l > 0) kraft += u64{1} << (maxLen - l);
    }
    require(kraft <= (u64{1} << maxLen),
            "HuffTable: code lengths violate the Kraft inequality");
  }
  t.codes = entropy::HuffmanCodec::canonicalCodes(t.lengths);
  return t;
}

HuffDecoder::HuffDecoder(const HuffTable& table) {
  for (u8 l : table.lengths) maxLen_ = std::max(maxLen_, l);
  firstCode_.assign(maxLen_ + 1u, 0);
  symbolBase_.assign(maxLen_ + 2u, 0);
  std::vector<u32> countPerLength(maxLen_ + 1u, 0);
  for (u8 l : table.lengths) {
    if (l > 0) ++countPerLength[l];
  }
  u32 code = 0;
  for (u32 len = 1; len <= maxLen_; ++len) {
    code = (code + (len >= 2 ? countPerLength[len - 1] : 0)) << 1;
    firstCode_[len] = code;
  }
  for (u32 len = 1; len <= maxLen_; ++len) {
    symbolBase_[len + 1] = symbolBase_[len] + countPerLength[len];
  }
  symbols_.resize(symbolBase_[maxLen_ + 1u]);
  std::vector<u32> cursor(symbolBase_.begin(), symbolBase_.end() - 1);
  for (usize s = 0; s < table.lengths.size(); ++s) {
    const u8 l = table.lengths[s];
    if (l > 0) symbols_[cursor[l]++] = static_cast<u16>(s);
  }
}

u16 HuffDecoder::decodeSymbol(const std::byte* bits, usize bitLimit,
                              usize& bitPos) const {
  u32 code = 0;
  for (u32 len = 1; len <= maxLen_; ++len) {
    require(bitPos < bitLimit, "Huffman block: bit stream overrun");
    const u32 bit =
        (std::to_integer<u32>(bits[bitPos >> 3]) >> (7 - (bitPos & 7))) & 1u;
    ++bitPos;
    code = (code << 1) | bit;
    const u32 count = symbolBase_[len + 1] - symbolBase_[len];
    if (count > 0 && code >= firstCode_[len] &&
        code < firstCode_[len] + count) {
      return symbols_[symbolBase_[len] + (code - firstCode_[len])];
    }
  }
  throw Error("Huffman block: invalid code in stream");
}

// ---- per-block encode/decode --------------------------------------------

usize huffmanBlockBytes(std::span<const u16> symbols,
                        const HuffTable& table) {
  usize bits = 0;
  u32 escapes = 0;
  for (u16 s : symbols) {
    const u8 len = table.lengths[s];
    if (len == 0) return kInvalidSize;  // symbol absent from the table
    bits += len;
    if (s == kEscapeSymbol) ++escapes;
  }
  return 2 + (bits + 7) / 8 + static_cast<usize>(escapes) * 4;
}

usize rleBlockBytes(std::span<const u16> symbols) {
  usize runs = 0;
  usize i = 0;
  while (i < symbols.size()) {
    usize j = i + 1;
    while (j < symbols.size() && symbols[j] == symbols[i] && j - i < 256) {
      ++j;
    }
    ++runs;
    i = j;
  }
  return 2 + runs * 3 + static_cast<usize>(escapeCount(symbols)) * 4;
}

usize encodeHuffmanBlock(std::span<const i32> residuals,
                         const HuffTable& table, std::byte* out) {
  usize bits = 0;
  for (i32 r : residuals) bits += table.lengths[symbolOf(r)];
  const usize codedBytes = (bits + 7) / 8;
  put16(out, static_cast<u16>(bits));
  std::fill(out + 2, out + 2 + codedBytes, std::byte{0});
  MsbBitWriter writer{out + 2};
  std::byte* escapes = out + 2 + codedBytes;
  for (i32 r : residuals) {
    const u16 s = symbolOf(r);
    writer.writeCode(table.codes[s], table.lengths[s]);
    if (s == kEscapeSymbol) {
      put32(escapes, static_cast<u32>(r));
      escapes += 4;
    }
  }
  return static_cast<usize>(escapes - out);
}

void decodeHuffmanBlock(ConstByteSpan payload, const HuffDecoder& decoder,
                        std::span<i32> residuals) {
  require(payload.size() >= 2, "Huffman block: truncated header");
  const usize bitCount = get16(payload.data());
  const usize codedBytes = (bitCount + 7) / 8;
  require(payload.size() >= 2 + codedBytes,
          "Huffman block: truncated code section");
  const std::byte* bits = payload.data() + 2;
  const std::byte* escapes = payload.data() + 2 + codedBytes;
  const usize escapeAvail = payload.size() - 2 - codedBytes;
  usize escapeUsed = 0;
  usize bitPos = 0;
  for (i32& r : residuals) {
    const u16 s = decoder.decodeSymbol(bits, bitCount, bitPos);
    if (s == kEscapeSymbol) {
      require(escapeUsed + 4 <= escapeAvail,
              "Huffman block: truncated escape section");
      r = static_cast<i32>(get32(escapes + escapeUsed));
      escapeUsed += 4;
    } else {
      r = zigzagDecode(s);
    }
  }
  require(bitPos == bitCount,
          "Huffman block: bit count does not match decoded symbols");
  require(escapeUsed == escapeAvail,
          "Huffman block: trailing bytes after escape section");
}

usize encodeRleBlock(std::span<const i32> residuals, std::byte* out) {
  std::byte* runs = out + 2;
  u32 runCount = 0;
  usize i = 0;
  u32 escapes = 0;
  while (i < residuals.size()) {
    const u16 s = symbolOf(residuals[i]);
    usize j = i + 1;
    while (j < residuals.size() && symbolOf(residuals[j]) == s &&
           j - i < 256) {
      ++j;
    }
    put16(runs, s);
    runs[2] = static_cast<std::byte>(j - i - 1);
    runs += 3;
    ++runCount;
    if (s == kEscapeSymbol) escapes += static_cast<u32>(j - i);
    i = j;
  }
  put16(out, static_cast<u16>(runCount));
  std::byte* esc = runs;
  for (i32 r : residuals) {
    if (symbolOf(r) == kEscapeSymbol) {
      put32(esc, static_cast<u32>(r));
      esc += 4;
    }
  }
  (void)escapes;
  return static_cast<usize>(esc - out);
}

void decodeRleBlock(ConstByteSpan payload, std::span<i32> residuals) {
  require(payload.size() >= 2, "RLE block: truncated header");
  const u16 runCount = get16(payload.data());
  require(payload.size() >= 2 + static_cast<usize>(runCount) * 3,
          "RLE block: truncated run section");
  const std::byte* runs = payload.data() + 2;
  const std::byte* escapes = runs + static_cast<usize>(runCount) * 3;
  const usize escapeAvail =
      payload.size() - 2 - static_cast<usize>(runCount) * 3;
  usize escapeUsed = 0;
  usize e = 0;
  for (u16 run = 0; run < runCount; ++run) {
    const u16 sym = get16(runs + run * 3);
    const usize len = std::to_integer<usize>(runs[run * 3 + 2]) + 1;
    require(sym < kSymbolAlphabet, "RLE block: symbol out of alphabet");
    require(e + len <= residuals.size(),
            "RLE block: runs overflow the block");
    for (usize k = 0; k < len; ++k) {
      if (sym == kEscapeSymbol) {
        require(escapeUsed + 4 <= escapeAvail,
                "RLE block: truncated escape section");
        residuals[e++] = static_cast<i32>(get32(escapes + escapeUsed));
        escapeUsed += 4;
      } else {
        residuals[e++] = zigzagDecode(sym);
      }
    }
  }
  require(e == residuals.size(), "RLE block: runs do not cover the block");
  require(escapeUsed == escapeAvail,
          "RLE block: trailing bytes after escape section");
}

// ---- Lorenzo-2D intra-block predictor -----------------------------------

bool lorenzo2dResiduals(std::span<const i32> quants,
                        std::span<i32> residuals) {
  const usize L = quants.size();
  const usize cols = 8;
  const usize rows = L / cols;
  for (usize r = 0; r < rows; ++r) {
    for (usize c = 0; c < cols; ++c) {
      const usize i = r * cols + c;
      const i64 west = c > 0 ? quants[i - 1] : 0;
      const i64 north = r > 0 ? quants[i - cols] : 0;
      const i64 northWest = (r > 0 && c > 0) ? quants[i - cols - 1] : 0;
      const i64 res = static_cast<i64>(quants[i]) - (west + north - northWest);
      if (res < std::numeric_limits<i32>::min() ||
          res > std::numeric_limits<i32>::max()) {
        return false;
      }
      residuals[i] = static_cast<i32>(res);
    }
  }
  return true;
}

void lorenzo2dReconstruct(std::span<const i32> residuals,
                          std::span<i32> quants) {
  const usize L = residuals.size();
  const usize cols = 8;
  const usize rows = L / cols;
  for (usize r = 0; r < rows; ++r) {
    for (usize c = 0; c < cols; ++c) {
      const usize i = r * cols + c;
      const i64 west = c > 0 ? quants[i - 1] : 0;
      const i64 north = r > 0 ? quants[i - cols] : 0;
      const i64 northWest = (r > 0 && c > 0) ? quants[i - cols - 1] : 0;
      quants[i] =
          static_cast<i32>(west + north - northWest + residuals[i]);
    }
  }
}

// ---- selection ----------------------------------------------------------

SelectionResult selectPipelines(std::span<const BlockCandidates> candidates,
                                PipelineMode mode, usize tableBytes) {
  require(mode != PipelineMode::Legacy,
          "selectPipelines: legacy mode has no pipeline selection");
  SelectionResult sel;
  sel.choice.assign(candidates.size(), PipelineId::Fle);

  auto pinned = [&](PipelineId id) {
    for (usize b = 0; b < candidates.size(); ++b) {
      // The FLE candidate is always valid; a block whose pinned pipeline
      // cannot represent it (Lorenzo residual overflow, symbol missing
      // from the table) falls back to FLE for that block alone.
      const usize want = candidates[b].bytes[static_cast<u8>(id)];
      const PipelineId use = want == kInvalidSize ? PipelineId::Fle : id;
      sel.choice[b] = use;
      sel.totalPayload += candidates[b].bytes[static_cast<u8>(use)];
      if (use == PipelineId::Huffman) sel.usesHuffman = true;
    }
  };

  switch (mode) {
    case PipelineMode::Fle: pinned(PipelineId::Fle); return sel;
    case PipelineMode::Huffman: pinned(PipelineId::Huffman); return sel;
    case PipelineMode::Rle: pinned(PipelineId::Rle); return sel;
    case PipelineMode::LorenzoFle: pinned(PipelineId::LorenzoFle); return sel;
    default: break;  // Auto
  }

  // Auto: per-block minimum, with and without the Huffman pipeline. The
  // shared table is worth shipping only when the blocks Huffman wins save
  // more than the table costs; otherwise the no-Huffman selection already
  // matches every pinned non-Huffman pipeline block for block.
  u64 sumNoHuff = 0;
  u64 sumAll = 0;
  std::vector<PipelineId> noHuff(candidates.size(), PipelineId::Fle);
  std::vector<PipelineId> all(candidates.size(), PipelineId::Fle);
  for (usize b = 0; b < candidates.size(); ++b) {
    const BlockCandidates& c = candidates[b];
    usize bestNo = kInvalidSize;
    usize bestAll = kInvalidSize;
    for (u8 p = 0; p < kPipelineCount; ++p) {
      const usize s = c.bytes[p];
      if (s == kInvalidSize) continue;
      if (s < bestAll) {
        bestAll = s;
        all[b] = static_cast<PipelineId>(p);
      }
      if (p != static_cast<u8>(PipelineId::Huffman) && s < bestNo) {
        bestNo = s;
        noHuff[b] = static_cast<PipelineId>(p);
      }
    }
    sumNoHuff += bestNo;
    sumAll += bestAll;
  }
  bool huffmanUsed = false;
  for (PipelineId p : all) huffmanUsed |= (p == PipelineId::Huffman);
  if (huffmanUsed && sumAll + tableBytes < sumNoHuff) {
    sel.choice = std::move(all);
    sel.totalPayload = sumAll;
    sel.usesHuffman = true;
  } else {
    sel.choice = std::move(noHuff);
    sel.totalPayload = sumNoHuff;
  }
  return sel;
}

PipelineMode parsePipelineMode(const std::string& name) {
  if (name == "legacy") return PipelineMode::Legacy;
  if (name == "auto") return PipelineMode::Auto;
  if (name == "fle") return PipelineMode::Fle;
  if (name == "huffman") return PipelineMode::Huffman;
  if (name == "rle") return PipelineMode::Rle;
  if (name == "lorenzo-fle") return PipelineMode::LorenzoFle;
  throw Error("unknown pipeline mode '" + name +
              "' (expected auto|fle|huffman|rle|lorenzo-fle|legacy)");
}

}  // namespace cuszp2::core
