// Format-v3 per-block compression pipelines (ROADMAP item 3).
//
// A pipeline is an explicit (predict -> quantize -> encode) stage pair
// applied to one block of quantization integers. Format v1/v2 hard-wires
// the single FLE pipeline; format v3 records a pipeline id per block and
// lets a cheap selector pick the smallest encoding block by block:
//
//   id 0  Fle         delta-1 predict, fixed-length encode (v1 payload)
//   id 1  Huffman     delta-1 predict, shared-table canonical Huffman
//   id 2  Rle         delta-1 predict, run-length encode
//   id 3  LorenzoFle  intra-block 2-D Lorenzo predict, fixed-length encode
//
// Residuals feed a common symbol mapping before the entropy stages:
// zigzag to an unsigned value, alphabet 1024, values >= 1023 emit the
// escape symbol 1023 plus the raw 4-byte little-endian residual appended
// after the coded section. The Huffman stage uses one canonical table per
// stream (built from the whole-stream delta-1 symbol histogram), carried
// in the stream's dictionary section — see docs/FORMAT.md.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/block_codec.hpp"

namespace cuszp2::core {

/// Wire pipeline id, recorded per block in the v3 descriptor array.
enum class PipelineId : u8 {
  Fle = 0,
  Huffman = 1,
  Rle = 2,
  LorenzoFle = 3,
};

inline constexpr u32 kPipelineCount = 4;

/// Config-level pipeline policy. Legacy keeps the v1/v2 writer bit-exact;
/// every other value emits format v3 (Auto = per-block selection, the
/// rest pin one pipeline for every block).
enum class PipelineMode : u8 {
  Legacy = 0,
  Auto,
  Fle,
  Huffman,
  Rle,
  LorenzoFle,
};

constexpr const char* toString(PipelineId p) {
  switch (p) {
    case PipelineId::Fle: return "fle";
    case PipelineId::Huffman: return "huffman";
    case PipelineId::Rle: return "rle";
    default: return "lorenzo-fle";
  }
}

constexpr const char* toString(PipelineMode m) {
  switch (m) {
    case PipelineMode::Legacy: return "legacy";
    case PipelineMode::Auto: return "auto";
    case PipelineMode::Fle: return "fle";
    case PipelineMode::Huffman: return "huffman";
    case PipelineMode::Rle: return "rle";
    default: return "lorenzo-fle";
  }
}

/// Prediction stage of a pipeline. Delta1 is the paper's first-order
/// in-block difference; Lorenzo2D treats the block as an (L/8) x 8 tile
/// and predicts each cell from its west/north/north-west neighbours.
enum class PredictStage : u8 { Delta1 = 0, Lorenzo2D = 1 };

/// Encoding stage of a pipeline.
enum class EncodeStage : u8 { Fle = 0, Huffman = 1, Rle = 2 };

/// Static descriptor of one pipeline: which stages it composes. The four
/// v3 pipelines are fixed instantiations of this (pipelineTable()); v1/v2
/// are the Delta1+Fle row with the legacy wire framing.
struct BlockPipeline {
  PipelineId id;
  PredictStage predict;
  EncodeStage encode;
  const char* name;
};

/// The four wire pipelines, indexed by PipelineId.
std::span<const BlockPipeline> pipelineTable();

// ---- v3 per-block descriptor -------------------------------------------

/// 1-byte per-block descriptor — the same cost as the v1/v2 offset array.
/// The legacy offset byte (block_codec.hpp, Fig. 8) only ever produces
/// values 0x00-0x1F (Plain-FLE) and 0x80-0xFF (Outlier-FLE); the 0x20-0x7F
/// hole encodes the non-FLE pipelines:
///   0x00-0x1F, 0x80-0xFF   Fle, the byte IS the legacy offset byte
///   0x20                   Huffman
///   0x40                   Rle
///   0x60 | fl              LorenzoFle, Plain-FLE at fixed length fl (0-31)
/// Any other value is an unknown pipeline (salvage quarantines the block).
/// FLE/Lorenzo payload sizes stay derivable from the descriptor alone;
/// the entropy pipelines prefix their payload with a u16 LE body size, read
/// by the same sequential walk that positions the blocks.
struct V3BlockDesc {
  PipelineId pipeline = PipelineId::Fle;
  u8 offsetByte = 0;  // legacy offset byte (Fle) or plain fl (LorenzoFle)

  void pack(std::byte* out) const;
  /// Unpacks without validating the pipeline id (salvage must be able to
  /// inspect corrupt descriptors); knownPipeline() reports validity.
  static V3BlockDesc unpack(const std::byte* in);

  bool knownPipeline() const {
    return static_cast<u8>(pipeline) < kPipelineCount;
  }

  /// Payload byte count implied by the descriptor at its payload position.
  /// `payload`/`remaining` cover the bytes from this block's start to the
  /// end of the payload region; the entropy pipelines read their u16 size
  /// prefix from it (returning kV3EntropyPrefixBytes when `remaining` is
  /// too short for the prefix, which the caller's bounds check then
  /// rejects). Unknown pipelines return 0 and are quarantined.
  usize payloadBytes(const PayloadSizeTable& psize, const std::byte* payload,
                     usize remaining) const;
};

inline constexpr usize kV3DescBytes = 1;

/// u16 LE body-size prefix in front of every Huffman/RLE block payload.
inline constexpr usize kV3EntropyPrefixBytes = 2;

// ---- symbol mapping -----------------------------------------------------

/// Entropy-stage alphabet: zigzagged residuals clamp into [0, 1022], the
/// escape symbol 1023 stands for any larger residual (raw value appended).
inline constexpr u32 kSymbolAlphabet = 1024;
inline constexpr u16 kEscapeSymbol = 1023;

constexpr u32 zigzagEncode(i32 v) {
  return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
}

constexpr i32 zigzagDecode(u32 z) {
  return static_cast<i32>((z >> 1) ^ (~(z & 1) + 1));
}

constexpr u16 symbolOf(i32 residual) {
  const u32 z = zigzagEncode(residual);
  return z < kEscapeSymbol ? static_cast<u16>(z) : kEscapeSymbol;
}

// ---- shared Huffman dictionary ------------------------------------------

/// Stream-level canonical Huffman table over the symbol alphabet. Code
/// lengths are built once from the whole-stream histogram; canonical codes
/// follow deterministically (entropy::HuffmanCodec's assignment), so the
/// compact (symbol, length) list is the table's entire wire form.
struct HuffTable {
  std::vector<u8> lengths;  // kSymbolAlphabet entries; 0 = unused symbol
  std::vector<u32> codes;   // canonical codes, MSB-first

  bool empty() const { return lengths.empty(); }

  static HuffTable fromFrequencies(std::span<const u64> freq);

  /// Compact wire form: u16 usedCount, then usedCount x (u16 symbol,
  /// u8 length), little-endian.
  usize serializedBytes() const;
  void serialize(std::byte* out) const;
  /// Throws cuszp2::Error on a malformed table (bad counts, symbol range,
  /// zero/overlong lengths, non-canonical ordering).
  static HuffTable parse(ConstByteSpan bytes);
};

/// Canonical decoder over a HuffTable (first-code-per-length walk,
/// MSB-first). Built once per decode call, reused for every block.
class HuffDecoder {
 public:
  explicit HuffDecoder(const HuffTable& table);

  /// Decodes one symbol from the MSB-first bit cursor. Throws on an
  /// invalid code or bit-stream overrun.
  u16 decodeSymbol(const std::byte* bits, usize bitLimit, usize& bitPos) const;

 private:
  u8 maxLen_ = 0;
  std::vector<u32> firstCode_;            // per length
  std::vector<u32> symbolBase_;           // index into symbols_ per length
  std::vector<u16> symbols_;              // canonical order
};

// ---- per-block encode/decode --------------------------------------------

/// Exact encoded size of one block under the shared-table Huffman
/// pipeline: u16 bit count + MSB-first code bytes + 4 bytes per escape.
usize huffmanBlockBytes(std::span<const u16> symbols, const HuffTable& table);

/// Exact encoded size of one block under the RLE pipeline:
/// u16 run count + 3 bytes per (symbol, runLen-1) run + 4 per escape.
usize rleBlockBytes(std::span<const u16> symbols);

/// Encodes one block's residuals with the shared Huffman table. Returns
/// bytes written (== huffmanBlockBytes of the mapped symbols).
usize encodeHuffmanBlock(std::span<const i32> residuals,
                         const HuffTable& table, std::byte* out);

/// Decodes a Huffman block payload back into `residuals` (full block
/// length). Throws cuszp2::Error on malformed payloads.
void decodeHuffmanBlock(ConstByteSpan payload, const HuffDecoder& decoder,
                        std::span<i32> residuals);

usize encodeRleBlock(std::span<const i32> residuals, std::byte* out);

void decodeRleBlock(ConstByteSpan payload, std::span<i32> residuals);

// ---- Lorenzo-2D intra-block predictor -----------------------------------

/// Forward 2-D Lorenzo prediction over one block of quantization integers
/// viewed as an (L/8) x 8 row-major tile (out-of-tile neighbours read 0).
/// Returns false when any residual overflows i32 (the caller must then
/// not select this pipeline for the block).
bool lorenzo2dResiduals(std::span<const i32> quants, std::span<i32> residuals);

/// Inverse: reconstructs quants from Lorenzo-2D residuals in raster order.
void lorenzo2dReconstruct(std::span<const i32> residuals,
                          std::span<i32> quants);

// ---- selection ----------------------------------------------------------

/// Per-block candidate sizes gathered by the analysis pass. kInvalidSize
/// marks a pipeline the block cannot use (e.g. Lorenzo residual overflow).
inline constexpr usize kInvalidSize = ~usize{0};

struct BlockCandidates {
  usize bytes[kPipelineCount] = {kInvalidSize, kInvalidSize, kInvalidSize,
                                 kInvalidSize};
};

struct SelectionResult {
  std::vector<PipelineId> choice;  // one per block
  u64 totalPayload = 0;
  bool usesHuffman = false;
};

/// Chooses a pipeline per block. Pinned modes force one id everywhere;
/// Auto takes the per-block minimum, admitting the Huffman pipeline only
/// when the blocks it would win shrink the stream by more than the shared
/// table costs (`tableBytes`). This guarantees an Auto stream is never
/// larger than the same data under any single pinned pipeline.
SelectionResult selectPipelines(std::span<const BlockCandidates> candidates,
                                PipelineMode mode, usize tableBytes);

/// Parses a CLI-style pipeline name ("auto", "fle", "huffman", "rle",
/// "lorenzo-fle", "legacy"); throws cuszp2::Error on unknown names.
PipelineMode parsePipelineMode(const std::string& name);

}  // namespace cuszp2::core
