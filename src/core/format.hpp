// Self-describing compressed stream layout.
//
//   [StreamHeader, 40 bytes, little-endian]
//   [offset bytes: 1 per block]                 <- "Part 1" in paper Fig. 5
//   [concatenated block payloads]               <- "Part 2"
//   [per-block CRC footer: 2 bytes per block]   <- version 2 only
//
// Block payload start positions are the exclusive prefix sum of the
// per-block payload sizes, each derivable from its offset byte alone.
//
// Version 2 appends a footer of 16-bit per-block digests (CRC-32 over the
// block's offset byte and payload, truncated) so corruption can be pinned
// to individual blocks and the remaining blocks salvaged; version 1
// streams carry no footer and parse unchanged. See docs/FORMAT.md for the
// byte-level specification of both versions.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "common/types.hpp"

namespace cuszp2::core {

inline constexpr u64 kMagic = 0x325A5053'32505A43ull;  // "CZP2SPZ2"
inline constexpr u32 kFormatVersion = 1;
inline constexpr u32 kFormatVersionV2 = 2;  // adds the per-block CRC footer
/// Version 3: per-block pipeline selection packed into the descriptor
/// byte's unused 0x20-0x7F range, a stream-level dictionary section (see
/// core/pipeline.hpp and docs/FORMAT.md), and the v2 CRC footer
/// unconditionally.
inline constexpr u32 kFormatVersionV3 = 3;

/// 16-bit per-block integrity digest: CRC-32 chained over the block's
/// offset byte and payload bytes, truncated to its low 16 bits. Including
/// the offset byte means a corrupted offset byte fails its own block's
/// digest even when the payload bytes survive.
u16 blockDigest(std::byte offsetByte, ConstByteSpan payload);

/// Version-3 digest: chained over the block's descriptor byte and its
/// payload (including any entropy size prefix), so pipeline-id or framing
/// corruption fails the block's own digest exactly like offset-byte
/// corruption does in version 2.
u16 blockDigestV3(ConstByteSpan descriptor, ConstByteSpan payload);

struct StreamHeader {
  u32 version = kFormatVersion;
  Precision precision = Precision::F32;
  EncodingMode mode = EncodingMode::Outlier;
  Predictor predictor = Predictor::FirstOrder;
  u32 blockSize = 32;
  u64 numElements = 0;
  f64 absErrorBound = 0.0;

  /// Optional CRC-32 over everything after the header (offsets, payload,
  /// and in version 2 the per-block footer); 0 = no checksum
  /// (Config::checksum enables it at compression time).
  u32 checksum = 0;

  /// Version 3 only: total bytes of the dictionary section (its 8-byte
  /// section header plus the serialized table). Stored in the header's
  /// formerly reserved bytes [36, 40), which versions 1/2 keep at zero —
  /// their serialized bytes are unchanged.
  u32 dictBytes = 0;

  static constexpr usize kBytes = 40;

  u64 numBlocks() const {
    return (numElements + blockSize - 1) / blockSize;
  }

  /// Original (uncompressed) size in bytes.
  u64 originalBytes() const {
    return numElements * byteWidth(precision);
  }

  /// Byte offset of the per-block descriptor array (versions 1/2: the
  /// offset bytes; version 3: the 1-byte pipeline descriptors).
  static constexpr usize offsetsBegin() { return kBytes; }

  /// Bytes per block in the descriptor array. Every format version packs
  /// one descriptor byte per block (v3 folds the pipeline id into the
  /// unused 0x20-0x7F range of the legacy offset byte).
  usize descriptorStride() const { return 1; }

  /// Size of the descriptor array.
  usize descriptorBytes() const {
    return static_cast<usize>(numBlocks()) * descriptorStride();
  }

  /// Byte offset of the version-3 dictionary section (== payloadBegin()
  /// for versions 1/2, whose dictBytes is 0).
  usize dictBegin() const { return kBytes + descriptorBytes(); }

  /// Byte offset of the payload region within the stream.
  usize payloadBegin() const {
    return kBytes + descriptorBytes() + dictBytes;
  }

  /// True when the stream carries the per-block CRC footer (version 2
  /// optional-on-request, version 3 always).
  bool hasBlockChecksums() const { return version >= kFormatVersionV2; }

  /// Size of the per-block CRC footer (trailing bytes of the stream);
  /// 0 for version-1 streams.
  usize footerBytes() const {
    return hasBlockChecksums() ? static_cast<usize>(numBlocks()) * 2 : 0;
  }

  void serialize(std::byte* out) const;  // writes kBytes bytes

  /// Parses and validates; throws cuszp2::Error on corrupt input.
  static StreamHeader parse(ConstByteSpan stream);

  /// Non-throwing parse for salvage paths; on failure returns nullopt and
  /// stores the parse error in `error` (when non-null).
  static std::optional<StreamHeader> tryParse(ConstByteSpan stream,
                                              std::string* error = nullptr);
};

}  // namespace cuszp2::core
