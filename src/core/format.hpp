// Self-describing compressed stream layout.
//
//   [StreamHeader, 40 bytes, little-endian]
//   [offset bytes: 1 per block]                 <- "Part 1" in paper Fig. 5
//   [concatenated block payloads]               <- "Part 2"
//   [per-block CRC footer: 2 bytes per block]   <- version 2 only
//
// Block payload start positions are the exclusive prefix sum of the
// per-block payload sizes, each derivable from its offset byte alone.
//
// Version 2 appends a footer of 16-bit per-block digests (CRC-32 over the
// block's offset byte and payload, truncated) so corruption can be pinned
// to individual blocks and the remaining blocks salvaged; version 1
// streams carry no footer and parse unchanged. See docs/FORMAT.md for the
// byte-level specification of both versions.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "common/types.hpp"

namespace cuszp2::core {

inline constexpr u64 kMagic = 0x325A5053'32505A43ull;  // "CZP2SPZ2"
inline constexpr u32 kFormatVersion = 1;
inline constexpr u32 kFormatVersionV2 = 2;  // adds the per-block CRC footer

/// 16-bit per-block integrity digest: CRC-32 chained over the block's
/// offset byte and payload bytes, truncated to its low 16 bits. Including
/// the offset byte means a corrupted offset byte fails its own block's
/// digest even when the payload bytes survive.
u16 blockDigest(std::byte offsetByte, ConstByteSpan payload);

struct StreamHeader {
  u32 version = kFormatVersion;
  Precision precision = Precision::F32;
  EncodingMode mode = EncodingMode::Outlier;
  Predictor predictor = Predictor::FirstOrder;
  u32 blockSize = 32;
  u64 numElements = 0;
  f64 absErrorBound = 0.0;

  /// Optional CRC-32 over everything after the header (offsets, payload,
  /// and in version 2 the per-block footer); 0 = no checksum
  /// (Config::checksum enables it at compression time).
  u32 checksum = 0;

  static constexpr usize kBytes = 40;

  u64 numBlocks() const {
    return (numElements + blockSize - 1) / blockSize;
  }

  /// Original (uncompressed) size in bytes.
  u64 originalBytes() const {
    return numElements * byteWidth(precision);
  }

  /// Byte offset of the offset-byte array within the stream.
  static constexpr usize offsetsBegin() { return kBytes; }

  /// Byte offset of the payload region within the stream.
  usize payloadBegin() const {
    return kBytes + static_cast<usize>(numBlocks());
  }

  /// True when the stream carries the version-2 per-block CRC footer.
  bool hasBlockChecksums() const { return version >= kFormatVersionV2; }

  /// Size of the per-block CRC footer (trailing bytes of the stream);
  /// 0 for version-1 streams.
  usize footerBytes() const {
    return hasBlockChecksums() ? static_cast<usize>(numBlocks()) * 2 : 0;
  }

  void serialize(std::byte* out) const;  // writes kBytes bytes

  /// Parses and validates; throws cuszp2::Error on corrupt input.
  static StreamHeader parse(ConstByteSpan stream);

  /// Non-throwing parse for salvage paths; on failure returns nullopt and
  /// stores the parse error in `error` (when non-null).
  static std::optional<StreamHeader> tryParse(ConstByteSpan stream,
                                              std::string* error = nullptr);
};

}  // namespace cuszp2::core
