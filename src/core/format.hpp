// Self-describing compressed stream layout.
//
//   [StreamHeader, 40 bytes, little-endian]
//   [offset bytes: 1 per block]                 <- "Part 1" in paper Fig. 5
//   [concatenated block payloads]               <- "Part 2"
//
// Block payload start positions are the exclusive prefix sum of the
// per-block payload sizes, each derivable from its offset byte alone.
#pragma once

#include <span>

#include "common/types.hpp"

namespace cuszp2::core {

inline constexpr u64 kMagic = 0x325A5053'32505A43ull;  // "CZP2SPZ2"
inline constexpr u32 kFormatVersion = 1;

struct StreamHeader {
  Precision precision = Precision::F32;
  EncodingMode mode = EncodingMode::Outlier;
  Predictor predictor = Predictor::FirstOrder;
  u32 blockSize = 32;
  u64 numElements = 0;
  f64 absErrorBound = 0.0;

  /// Optional CRC-32 over the offset + payload regions; 0 = no checksum
  /// (Config::checksum enables it at compression time).
  u32 checksum = 0;

  static constexpr usize kBytes = 40;

  u64 numBlocks() const {
    return (numElements + blockSize - 1) / blockSize;
  }

  /// Original (uncompressed) size in bytes.
  u64 originalBytes() const {
    return numElements * byteWidth(precision);
  }

  /// Byte offset of the offset-byte array within the stream.
  static constexpr usize offsetsBegin() { return kBytes; }

  /// Byte offset of the payload region within the stream.
  usize payloadBegin() const {
    return kBytes + static_cast<usize>(numBlocks());
  }

  void serialize(std::byte* out) const;  // writes kBytes bytes

  /// Parses and validates; throws cuszp2::Error on corrupt input.
  static StreamHeader parse(ConstByteSpan stream);
};

}  // namespace cuszp2::core
