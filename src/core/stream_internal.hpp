// Internal helpers shared by the legacy (v1/v2) stream pipeline in
// stream.cpp and the format-v3 pipeline in stream_v3.cpp. Not part of the
// public API — include only from core/ translation units.
#pragma once

#include <limits>
#include <span>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "core/quantizer.hpp"
#include "core/stream.hpp"
#include "gpusim/launcher.hpp"

namespace cuszp2::core::detail {

/// Records the traffic of the kernel's input/output streams under the
/// configured access pattern (vectorized + coalesced vs scalar strided,
/// Sec. IV-B).
struct AccessRecorder {
  bool vectorized;
  u32 transactionBytes;

  void read(gpusim::MemCounters& mem, u64 bytes, u32 elemBytes) const {
    if (vectorized) {
      mem.noteVectorRead(bytes, transactionBytes);
    } else {
      mem.noteStridedRead(bytes, elemBytes);
    }
  }

  void write(gpusim::MemCounters& mem, u64 bytes, u32 elemBytes) const {
    if (vectorized) {
      mem.noteVectorWrite(bytes, transactionBytes);
    } else {
      mem.noteStridedWrite(bytes, elemBytes);
    }
  }
};

/// Second-difference pass of the SecondOrder predictor, applied on top of
/// first-order residuals. The block head stays out of the chain: d_0 = q_0
/// is the (often huge) block-independence outlier and chaining d_1 against
/// it would poison every second-order block.
inline void secondOrderDiff(std::span<i32> res) {
  i32 prevD = 0;
  for (usize i = 1; i < res.size(); ++i) {
    const i32 d = res[i];
    const i64 r2 = static_cast<i64>(d) - static_cast<i64>(prevD);
    require(r2 >= std::numeric_limits<i32>::min() &&
                r2 <= std::numeric_limits<i32>::max(),
            "Compressor: error bound too small for the second-order "
            "predictor's residual range");
    res[i] = static_cast<i32>(r2);
    prevD = d;
  }
}

/// Inverse of the prediction (prefix sums, once or twice).
inline void residualsToQuants(std::span<const i32> res, std::span<i32> quants,
                              Predictor predictor) {
  if (predictor == Predictor::SecondOrder) {
    if (res.empty()) return;
    quants[0] = res[0];
    i32 d = 0;
    i32 q = res[0];
    for (usize i = 1; i < res.size(); ++i) {
      d += res[i];
      q += d;
      quants[i] = q;
    }
  } else {
    if (simd::prefixSumI32(res, quants.data())) return;
    i32 q = 0;
    for (usize i = 0; i < res.size(); ++i) {
      q += res[i];
      quants[i] = q;
    }
  }
}

/// Reconstruction loop: out[i] = q[i] * 2eb, SIMD when active (the vector
/// path performs the identical f64 multiply + narrowing convert).
template <FloatingPoint T>
void dequantizeSpan(const Quantizer& quantizer, std::span<const i32> q,
                    T* out) {
  if (simd::dequantize(q, quantizer.twoEb(), out)) return;
  for (usize i = 0; i < q.size(); ++i) {
    out[i] = quantizer.dequantize<T>(q[i]);
  }
}

inline KernelProfile makeProfile(const gpusim::LaunchResult& launch,
                                 const gpusim::TimingModel& timing,
                                 u64 originalBytes, f64 extraSeconds = 0.0) {
  KernelProfile p;
  p.mem = launch.mem;
  p.sync = launch.sync;
  p.timing = timing.kernel(launch.mem, launch.sync);
  p.endToEndSeconds = p.timing.totalSeconds + extraSeconds;
  p.endToEndGBps = gpusim::gbps(originalBytes, p.endToEndSeconds);
  p.wallSeconds = launch.wallSeconds;
  return p;
}

}  // namespace cuszp2::core::detail
