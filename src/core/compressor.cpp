#include "core/compressor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "metrics/error_stats.hpp"
#include "scan/chained.hpp"
#include "scan/lookback.hpp"

namespace cuszp2::core {

namespace {

/// Unified per-tile synchronization over either protocol, so the kernels
/// are written once (ablations switch the algorithm, Sec. VI-E).
class TileSync {
 public:
  TileSync(scan::Algorithm algo, u32 tiles)
      : algo_(algo),
        lookback_(algo == scan::Algorithm::DecoupledLookback ? tiles : 1),
        chained_(algo == scan::Algorithm::ChainedScan ? tiles : 1) {}

  u64 processTile(u32 tile, u64 aggregate, gpusim::SyncStats& sync,
                  gpusim::MemCounters& mem) {
    return algo_ == scan::Algorithm::DecoupledLookback
               ? lookback_.processTile(tile, aggregate, sync, mem)
               : chained_.processTile(tile, aggregate, sync, mem);
  }

 private:
  scan::Algorithm algo_;
  scan::LookbackState lookback_;
  scan::ChainedScanState chained_;
};

/// Records the traffic of the kernel's input/output streams under the
/// configured access pattern (vectorized + coalesced vs scalar strided,
/// Sec. IV-B).
struct AccessRecorder {
  bool vectorized;
  u32 transactionBytes;

  void read(gpusim::MemCounters& mem, u64 bytes, u32 elemBytes) const {
    if (vectorized) {
      mem.noteVectorRead(bytes, transactionBytes);
    } else {
      mem.noteStridedRead(bytes, elemBytes);
    }
  }

  void write(gpusim::MemCounters& mem, u64 bytes, u32 elemBytes) const {
    if (vectorized) {
      mem.noteVectorWrite(bytes, transactionBytes);
    } else {
      mem.noteStridedWrite(bytes, elemBytes);
    }
  }
};

/// Pads a partial final block by repeating the last quantization integer
/// (difference 0, so padding is free to encode).
void padQuants(std::span<i32> quants, usize validCount) {
  if (validCount == 0) {
    std::fill(quants.begin(), quants.end(), 0);
    return;
  }
  const i32 fill = quants[validCount - 1];
  std::fill(quants.begin() + validCount, quants.end(), fill);
}

/// Applies the configured in-block prediction: first-order differences
/// (the paper's pipeline), optionally differenced a second time. The
/// first element is always predicted from 0, keeping blocks independent.
void quantsToResiduals(std::span<const i32> quants, std::span<i32> res,
                       Predictor predictor) {
  i32 prev = 0;
  for (usize i = 0; i < quants.size(); ++i) {
    const i32 cur = quants[i];  // read before write: res may alias quants
    res[i] = cur - prev;
    prev = cur;
  }
  if (predictor == Predictor::SecondOrder) {
    // Difference the differences, but leave the block head out of the
    // chain: d_0 = q_0 is the (often huge) block-independence outlier and
    // chaining d_1 against it would poison every second-order block.
    i32 prevD = 0;
    for (usize i = 1; i < res.size(); ++i) {
      const i32 d = res[i];
      const i64 r2 = static_cast<i64>(d) - static_cast<i64>(prevD);
      require(r2 >= std::numeric_limits<i32>::min() &&
                  r2 <= std::numeric_limits<i32>::max(),
              "Compressor: error bound too small for the second-order "
              "predictor's residual range");
      res[i] = static_cast<i32>(r2);
      prevD = d;
    }
  }
}

/// Inverse of quantsToResiduals (prefix sums, once or twice).
void residualsToQuants(std::span<const i32> res, std::span<i32> quants,
                       Predictor predictor) {
  if (predictor == Predictor::SecondOrder) {
    if (res.empty()) return;
    quants[0] = res[0];
    i32 d = 0;
    i32 q = res[0];
    for (usize i = 1; i < res.size(); ++i) {
      d += res[i];
      q += d;
      quants[i] = q;
    }
  } else {
    i32 q = 0;
    for (usize i = 0; i < res.size(); ++i) {
      q += res[i];
      quants[i] = q;
    }
  }
}

KernelProfile makeProfile(const gpusim::LaunchResult& launch,
                          const gpusim::TimingModel& timing,
                          u64 originalBytes, f64 extraSeconds = 0.0) {
  KernelProfile p;
  p.mem = launch.mem;
  p.sync = launch.sync;
  p.timing = timing.kernel(launch.mem, launch.sync);
  p.endToEndSeconds = p.timing.totalSeconds + extraSeconds;
  p.endToEndGBps = gpusim::gbps(originalBytes, p.endToEndSeconds);
  p.wallSeconds = launch.wallSeconds;
  return p;
}

}  // namespace

Compressor::Compressor(Config config, gpusim::DeviceSpec device)
    : config_(config), timing_(std::move(device)), launcher_() {
  config_.validate();
}

template <FloatingPoint T>
Compressed Compressor::compress(std::span<const T> data) const {
  const u32 L = config_.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = data.size();
  const u64 originalBytes = n * sizeof(T);

  // Resolve the error bound. If only a REL bound is configured, reduce the
  // value range on-device first (one bandwidth-limited read of the input).
  f64 rangeSeconds = 0.0;
  f64 absEb = config_.absErrorBound;
  if (absEb <= 0.0) {
    const f64 range = metrics::valueRange(data);
    absEb = Quantizer::absFromRel(config_.relErrorBound, range);
    rangeSeconds = static_cast<f64>(originalBytes) /
                       (timing_.spec().memBandwidthGBps * 1e9) +
                   timing_.launchSeconds();
  }
  const Quantizer quantizer(absEb, config_.roundingMode);

  StreamHeader header;
  header.precision = precisionOf<T>();
  header.mode = config_.mode;
  header.predictor = config_.predictor;
  header.blockSize = L;
  header.numElements = n;
  header.absErrorBound = absEb;

  const u64 numBlocks = header.numBlocks();
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));

  Compressed out;
  out.originalBytes = originalBytes;
  out.stream.assign(header.payloadBegin() +
                        static_cast<usize>(numBlocks) * maxPayloadSize(L),
                    std::byte{0});
  header.serialize(out.stream.data());
  if (n == 0) {
    out.stream.resize(StreamHeader::kBytes);
    out.ratio = 0.0;
    out.profile.endToEndSeconds = timing_.launchSeconds();
    return out;
  }

  std::byte* offsetBytes = out.stream.data() + StreamHeader::offsetsBegin();
  std::byte* payloadOut = out.stream.data() + header.payloadBegin();

  const BlockCodec codec(L);
  TileSync syncState(config_.syncAlgorithm, tiles);
  std::vector<u64> tileInclusive(tiles, 0);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  const auto launch = launcher_.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    // Tile-local scratch: quantization integers (GPU shared memory) and
    // per-block plans.
    std::vector<i32> quants(static_cast<usize>(blocksHere) * L);
    std::vector<BlockPlan> plans(blocksHere);

    // Pass 1 — lossy conversion + encoding analysis (the "extra loop" that
    // makes compression slower than decompression, Sec. V-B).
    u64 aggregate = 0;
    u64 elemsRead = 0;
    for (u32 b = 0; b < blocksHere; ++b) {
      const u64 blockIdx = firstBlock + b;
      const u64 eFirst = blockIdx * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      std::span<i32> q(quants.data() + static_cast<usize>(b) * L, L);
      for (u64 e = eFirst; e < eLast; ++e) {
        q[e - eFirst] = quantizer.quantize(data[e]);
      }
      padQuants(q, static_cast<usize>(eLast - eFirst));
      elemsRead += eLast - eFirst;

      // Prediction happens in place: the scratch now holds residuals.
      quantsToResiduals(q, q, config_.predictor);
      plans[b] = codec.planResiduals(q, config_.mode);
      offsetBytes[blockIdx] = static_cast<std::byte>(plans[b].header.pack());
      aggregate += plans[b].payloadBytes;
    }
    access.read(ctx.mem, elemsRead * sizeof(T), sizeof(T));
    access.write(ctx.mem, blocksHere, 1);
    // Pass-1 analysis: quantize + diff + selection scan, ~12 integer ops
    // per element regardless of content. Quantization scratch lives in
    // shared memory.
    ctx.mem.noteOps(static_cast<u64>(blocksHere) * L * 12);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * L * 8);

    // Global prefix sum over tile aggregates (step 3).
    const u64 base =
        syncState.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);
    tileInclusive[ctx.blockIdx] = base + aggregate;

    // Pass 2 — encode payloads and concatenate (step 4).
    u64 cursor = base;
    for (u32 b = 0; b < blocksHere; ++b) {
      std::span<const i32> r(quants.data() + static_cast<usize>(b) * L, L);
      codec.encodeResiduals(r, plans[b], payloadOut + cursor);
      cursor += plans[b].payloadBytes;
    }
    access.write(ctx.mem, aggregate, 4);
    // Pass-2 encoding cost scales with the bytes actually packed: zero
    // blocks are skipped outright and well-compressed blocks pack fewer
    // planes, which is why sparse/smooth data compresses *faster* and why
    // CUSZP2-O can outrun CUSZP2-P when its ratio advantage is large
    // (paper Fig. 15 and Sec. V-B).
    ctx.mem.noteOps(aggregate * 6);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * L * 4);
  });

  const u64 totalPayload = tileInclusive[tiles - 1];
  out.stream.resize(header.payloadBegin() + totalPayload);

  // Optional integrity stamp: CRC-32 over offsets + payload (one extra
  // bandwidth pass over the compressed bytes).
  f64 checksumSeconds = 0.0;
  if (config_.checksum) {
    header.checksum = crc32(ConstByteSpan(
        out.stream.data() + StreamHeader::offsetsBegin(),
        out.stream.size() - StreamHeader::offsetsBegin()));
    if (header.checksum == 0) header.checksum = 1;  // 0 means "absent"
    header.serialize(out.stream.data());
    checksumSeconds =
        static_cast<f64>(out.stream.size()) /
            (timing_.spec().memBandwidthGBps * 1e9) +
        timing_.launchSeconds();
  }

  out.ratio = static_cast<f64>(originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing_, originalBytes,
                            rangeSeconds + checksumSeconds);
  return out;
}

template <FloatingPoint T>
Decompressed<T> Compressor::decompress(ConstByteSpan stream) const {
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "decompress: stream precision does not match the requested type");

  // Integrity check when the stream carries a checksum.
  f64 checksumSeconds = 0.0;
  if (header.checksum != 0) {
    u32 crc = crc32(ConstByteSpan(
        stream.data() + StreamHeader::offsetsBegin(),
        stream.size() - StreamHeader::offsetsBegin()));
    if (crc == 0) crc = 1;
    require(crc == header.checksum,
            "decompress: checksum mismatch — the stream is corrupted");
    checksumSeconds = static_cast<f64>(stream.size()) /
                          (timing_.spec().memBandwidthGBps * 1e9) +
                      timing_.launchSeconds();
  }
  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();

  Decompressed<T> out;
  out.data.assign(n, T{});
  if (n == 0) {
    out.profile.endToEndSeconds = timing_.launchSeconds();
    return out;
  }

  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail = stream.size() - header.payloadBegin();

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  TileSync syncState(config_.syncAlgorithm, tiles);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  const auto launch = launcher_.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    // Read offset bytes; lengths fall out of the headers directly — no
    // second analysis loop, which is why decompression is faster (Sec. V-B).
    u64 aggregate = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      aggregate += payloadSize(h, L);
    }
    access.read(ctx.mem, blocksHere, 1);
    ctx.mem.noteOps(blocksHere * 2);

    const u64 base =
        syncState.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    u64 cursor = base;
    i32 quantsArr[256];
    u64 zeroBytes = 0;
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      const usize size = payloadSize(h, L);
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);

      if (!h.outlierMode && h.fixedLength == 0) {
        // Zero block: flush with device memset (paper Sec. V-B, JetIn).
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = T{};
        zeroBytes += (eLast - eFirst) * sizeof(T);
        continue;
      }

      require(cursor + size <= payloadAvail,
              "decompress: truncated payload region");
      std::span<i32> q(quantsArr, L);
      codec.decodeResiduals(h, payload + cursor, q);
      residualsToQuants(q, q, header.predictor);
      cursor += size;
      payloadBytesRead += size;
      for (u64 e = eFirst; e < eLast; ++e) {
        out.data[e] = quantizer.dequantize<T>(q[e - eFirst]);
      }
      decodedElems += eLast - eFirst;
    }
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteMemset(zeroBytes);
    ctx.mem.noteOps(decodedElems * 6);
    ctx.mem.noteL1(decodedElems * 8);
  });

  out.profile =
      makeProfile(launch, timing_, header.originalBytes(), checksumSeconds);
  return out;
}

template <FloatingPoint T>
BlockRange<T> Compressor::decompressBlocks(ConstByteSpan stream,
                                           u64 firstBlock,
                                           u64 blockCount) const {
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "decompressBlocks: stream precision mismatch");
  const u64 numBlocks = header.numBlocks();
  require(firstBlock < numBlocks && blockCount > 0 &&
              firstBlock + blockCount <= numBlocks,
          "decompressBlocks: block range out of bounds");

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));

  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail = stream.size() - header.payloadBegin();

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  TileSync syncState(config_.syncAlgorithm, tiles);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  BlockRange<T> out;
  out.firstElement = firstBlock * L;
  const u64 lastElement = std::min<u64>(n, (firstBlock + blockCount) * L);
  out.values.assign(lastElement - out.firstElement, T{});

  // The offset array alone is scanned (1 byte per block) to locate the
  // range; only the requested blocks run the decode path. This is why
  // random access reaches TB-level throughput relative to the original
  // data size (paper Fig. 20).
  const auto launch = launcher_.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 tFirst = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 tLast = std::min(numBlocks, tFirst + bpt);

    u64 aggregate = 0;
    for (u64 blk = tFirst; blk < tLast; ++blk) {
      aggregate += payloadSize(
          BlockHeader::unpack(std::to_integer<u8>(offsetBytes[blk])), L);
    }
    access.read(ctx.mem, tLast - tFirst, 1);
    ctx.mem.noteOps((tLast - tFirst) * 2);

    const u64 base =
        syncState.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    if (tLast <= firstBlock || tFirst >= firstBlock + blockCount) return;

    u64 cursor = base;
    i32 quantsArr[256];
    for (u64 blk = tFirst; blk < tLast; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      const usize size = payloadSize(h, L);
      if (blk >= firstBlock && blk < firstBlock + blockCount) {
        require(cursor + size <= payloadAvail,
                "decompressBlocks: truncated payload region");
        std::span<i32> q(quantsArr, L);
        codec.decodeResiduals(h, payload + cursor, q);
        residualsToQuants(q, q, header.predictor);
        const u64 eFirst = blk * L;
        const u64 eLast = std::min<u64>(n, eFirst + L);
        for (u64 e = eFirst; e < eLast; ++e) {
          out.values[e - out.firstElement] = quantizer.dequantize<T>(
              q[e - eFirst]);
        }
        access.read(ctx.mem, size, 4);
        access.write(ctx.mem, (eLast - eFirst) * sizeof(T), sizeof(T));
        ctx.mem.noteOps((eLast - eFirst) * 6);
      }
      cursor += size;
    }
  });

  out.profile = makeProfile(launch, timing_, header.originalBytes());
  return out;
}

template <FloatingPoint T>
Compressed Compressor::replaceBlocks(ConstByteSpan stream, u64 firstBlock,
                                     std::span<const T> values) const {
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "replaceBlocks: stream precision mismatch");
  require(!values.empty(), "replaceBlocks: values must be non-empty");

  const u32 L = header.blockSize;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();
  const u64 blockCount = (values.size() + L - 1) / L;
  require(firstBlock < numBlocks && firstBlock + blockCount <= numBlocks,
          "replaceBlocks: block range out of bounds");
  const u64 eFirst = firstBlock * L;
  const u64 eLast = std::min<u64>(n, (firstBlock + blockCount) * L);
  require(values.size() == eLast - eFirst,
          "replaceBlocks: values must cover whole blocks (size must be "
          "a multiple of the block size or end at the stream tail)");

  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail = stream.size() - header.payloadBegin();

  // Locate the byte range of the replaced blocks and the payload total
  // (host-side scan; on the device this is the same offset-array pass the
  // random-access read performs).
  u64 rangeStart = 0;
  u64 rangeEnd = 0;
  u64 totalPayload = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    const usize size = payloadSize(
        BlockHeader::unpack(std::to_integer<u8>(offsetBytes[blk])), L);
    if (blk == firstBlock) rangeStart = totalPayload;
    totalPayload += size;
    if (blk == firstBlock + blockCount - 1) rangeEnd = totalPayload;
  }
  require(totalPayload <= payloadAvail, "replaceBlocks: truncated payload");

  // Re-encode the replacement blocks under the stream's bound and mode
  // (one small kernel).
  const Quantizer quantizer(header.absErrorBound, config_.roundingMode);
  const BlockCodec codec(L);
  std::vector<std::byte> newOffsets(blockCount);
  std::vector<std::byte> newPayload(blockCount * maxPayloadSize(L));
  std::vector<u64> newSizes(blockCount, 0);
  const auto launch = launcher_.launch(1, [&](gpusim::BlockCtx& ctx) {
    std::vector<i32> q(L);
    u64 cursor = 0;
    for (u64 b = 0; b < blockCount; ++b) {
      const u64 vFirst = b * L;
      const u64 vLast = std::min<u64>(values.size(), vFirst + L);
      for (u64 v = vFirst; v < vLast; ++v) {
        q[v - vFirst] = quantizer.quantize(values[v]);
      }
      padQuants(q, static_cast<usize>(vLast - vFirst));
      quantsToResiduals(q, q, header.predictor);
      const auto plan = codec.planResiduals(q, header.mode);
      newOffsets[b] = static_cast<std::byte>(plan.header.pack());
      codec.encodeResiduals(q, plan, newPayload.data() + cursor);
      newSizes[b] = plan.payloadBytes;
      cursor += plan.payloadBytes;
    }
    ctx.mem.noteVectorRead(values.size() * sizeof(T), 32);
    ctx.mem.noteScalarRead(numBlocks, 1, 32);  // offset-array scan
    ctx.mem.noteVectorWrite(cursor + blockCount, 32);
    ctx.mem.noteOps(values.size() * 16);
  });
  u64 newRangeBytes = 0;
  for (u64 s : newSizes) newRangeBytes += s;

  // Splice: header | offsets (patched) | payload prefix | new | suffix.
  Compressed out;
  out.originalBytes = header.originalBytes();
  out.stream.reserve(header.payloadBegin() + totalPayload - (rangeEnd -
                     rangeStart) + newRangeBytes);
  out.stream.insert(out.stream.end(), stream.begin(),
                    stream.begin() + static_cast<usize>(
                        StreamHeader::offsetsBegin()));
  out.stream.insert(out.stream.end(), offsetBytes,
                    offsetBytes + firstBlock);
  out.stream.insert(out.stream.end(), newOffsets.begin(), newOffsets.end());
  out.stream.insert(out.stream.end(), offsetBytes + firstBlock + blockCount,
                    offsetBytes + numBlocks);
  out.stream.insert(out.stream.end(), payload, payload + rangeStart);
  out.stream.insert(out.stream.end(), newPayload.begin(),
                    newPayload.begin() + newRangeBytes);
  out.stream.insert(out.stream.end(), payload + rangeEnd,
                    payload + totalPayload);

  // Keep the integrity stamp valid after the splice.
  if (header.checksum != 0) {
    StreamHeader patched = header;
    patched.checksum = crc32(ConstByteSpan(
        out.stream.data() + StreamHeader::offsetsBegin(),
        out.stream.size() - StreamHeader::offsetsBegin()));
    if (patched.checksum == 0) patched.checksum = 1;
    patched.serialize(out.stream.data());
  }

  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing_, (eLast - eFirst) * sizeof(T));
  return out;
}

// Explicit instantiations of the public surface.
template Compressed Compressor::compress<f32>(std::span<const f32>) const;
template Compressed Compressor::compress<f64>(std::span<const f64>) const;
template Decompressed<f32> Compressor::decompress<f32>(ConstByteSpan) const;
template Decompressed<f64> Compressor::decompress<f64>(ConstByteSpan) const;
template BlockRange<f32> Compressor::decompressBlocks<f32>(ConstByteSpan, u64,
                                                           u64) const;
template BlockRange<f64> Compressor::decompressBlocks<f64>(ConstByteSpan, u64,
                                                           u64) const;
template Compressed Compressor::replaceBlocks<f32>(
    ConstByteSpan, u64, std::span<const f32>) const;
template Compressed Compressor::replaceBlocks<f64>(
    ConstByteSpan, u64, std::span<const f64>) const;

}  // namespace cuszp2::core
