#include "core/compressor.hpp"

namespace cuszp2::core {

Compressor::Compressor(Config config, gpusim::DeviceSpec device)
    : config_(config), device_(std::move(device)) {
  config_.validate();
}

CompressorStream& Compressor::threadStream() const {
  // One warm stream per host thread: concurrent one-shot calls from
  // different threads never share scratch, while repeated calls from the
  // same thread hit the zero-allocation steady state. reconfigure() is
  // cheap (POD config copy + in-place spec assignment).
  static thread_local CompressorStream stream;
  stream.reconfigure(config_, device_);
  return stream;
}

template <FloatingPoint T>
Compressed Compressor::compress(std::span<const T> data) const {
  return threadStream().compress(data);
}

template <FloatingPoint T>
Decompressed<T> Compressor::decompress(ConstByteSpan stream) const {
  return threadStream().decompress<T>(stream);
}

template <FloatingPoint T>
Salvaged<T> Compressor::decompressResilient(ConstByteSpan stream,
                                            T fillValue) const {
  return threadStream().decompressResilient<T>(stream, fillValue);
}

template <FloatingPoint T>
BlockRange<T> Compressor::decompressBlocks(ConstByteSpan stream,
                                           u64 firstBlock,
                                           u64 blockCount) const {
  return threadStream().decompressBlocks<T>(stream, firstBlock, blockCount);
}

template <FloatingPoint T>
Compressed Compressor::replaceBlocks(ConstByteSpan stream, u64 firstBlock,
                                     std::span<const T> values) const {
  return threadStream().replaceBlocks(stream, firstBlock, values);
}

// Explicit instantiations of the public surface.
template Compressed Compressor::compress<f32>(std::span<const f32>) const;
template Compressed Compressor::compress<f64>(std::span<const f64>) const;
template Decompressed<f32> Compressor::decompress<f32>(ConstByteSpan) const;
template Decompressed<f64> Compressor::decompress<f64>(ConstByteSpan) const;
template Salvaged<f32> Compressor::decompressResilient<f32>(ConstByteSpan,
                                                            f32) const;
template Salvaged<f64> Compressor::decompressResilient<f64>(ConstByteSpan,
                                                            f64) const;
template BlockRange<f32> Compressor::decompressBlocks<f32>(ConstByteSpan, u64,
                                                           u64) const;
template BlockRange<f64> Compressor::decompressBlocks<f64>(ConstByteSpan, u64,
                                                           u64) const;
template Compressed Compressor::replaceBlocks<f32>(
    ConstByteSpan, u64, std::span<const f32>) const;
template Compressed Compressor::replaceBlocks<f64>(
    ConstByteSpan, u64, std::span<const f64>) const;

}  // namespace cuszp2::core
