#include "core/stream.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "metrics/error_stats.hpp"
#include "scan/chained.hpp"
#include "scan/lookback.hpp"

namespace cuszp2::core {

namespace {

/// Unified per-tile synchronization over either protocol, so the kernels
/// are written once (ablations switch the algorithm, Sec. VI-E). The flag
/// words live in the stream's arena: repeated scans allocate nothing.
class TileSync {
 public:
  TileSync(scan::Algorithm algo, u32 tiles, Arena& arena)
      : algo_(algo),
        lookback_(tilesFor(algo, scan::Algorithm::DecoupledLookback, tiles),
                  arena.allocSpan<std::atomic<u64>>(
                      tilesFor(algo, scan::Algorithm::DecoupledLookback,
                               tiles))),
        chained_(tilesFor(algo, scan::Algorithm::ChainedScan, tiles),
                 arena.allocSpan<std::atomic<u64>>(
                     tilesFor(algo, scan::Algorithm::ChainedScan, tiles))) {}

  u64 processTile(u32 tile, u64 aggregate, gpusim::SyncStats& sync,
                  gpusim::MemCounters& mem) {
    return algo_ == scan::Algorithm::DecoupledLookback
               ? lookback_.processTile(tile, aggregate, sync, mem)
               : chained_.processTile(tile, aggregate, sync, mem);
  }

 private:
  static u32 tilesFor(scan::Algorithm algo, scan::Algorithm wanted,
                      u32 tiles) {
    return algo == wanted ? tiles : 1;
  }

  scan::Algorithm algo_;
  scan::LookbackState lookback_;
  scan::ChainedScanState chained_;
};

/// Records the traffic of the kernel's input/output streams under the
/// configured access pattern (vectorized + coalesced vs scalar strided,
/// Sec. IV-B).
struct AccessRecorder {
  bool vectorized;
  u32 transactionBytes;

  void read(gpusim::MemCounters& mem, u64 bytes, u32 elemBytes) const {
    if (vectorized) {
      mem.noteVectorRead(bytes, transactionBytes);
    } else {
      mem.noteStridedRead(bytes, elemBytes);
    }
  }

  void write(gpusim::MemCounters& mem, u64 bytes, u32 elemBytes) const {
    if (vectorized) {
      mem.noteVectorWrite(bytes, transactionBytes);
    } else {
      mem.noteStridedWrite(bytes, elemBytes);
    }
  }
};

/// Second-difference pass of the SecondOrder predictor, applied on top of
/// first-order residuals. The block head stays out of the chain: d_0 = q_0
/// is the (often huge) block-independence outlier and chaining d_1 against
/// it would poison every second-order block.
void secondOrderDiff(std::span<i32> res) {
  i32 prevD = 0;
  for (usize i = 1; i < res.size(); ++i) {
    const i32 d = res[i];
    const i64 r2 = static_cast<i64>(d) - static_cast<i64>(prevD);
    require(r2 >= std::numeric_limits<i32>::min() &&
                r2 <= std::numeric_limits<i32>::max(),
            "Compressor: error bound too small for the second-order "
            "predictor's residual range");
    res[i] = static_cast<i32>(r2);
    prevD = d;
  }
}

/// Inverse of the prediction (prefix sums, once or twice).
void residualsToQuants(std::span<const i32> res, std::span<i32> quants,
                       Predictor predictor) {
  if (predictor == Predictor::SecondOrder) {
    if (res.empty()) return;
    quants[0] = res[0];
    i32 d = 0;
    i32 q = res[0];
    for (usize i = 1; i < res.size(); ++i) {
      d += res[i];
      q += d;
      quants[i] = q;
    }
  } else {
    i32 q = 0;
    for (usize i = 0; i < res.size(); ++i) {
      q += res[i];
      quants[i] = q;
    }
  }
}

KernelProfile makeProfile(const gpusim::LaunchResult& launch,
                          const gpusim::TimingModel& timing,
                          u64 originalBytes, f64 extraSeconds = 0.0) {
  KernelProfile p;
  p.mem = launch.mem;
  p.sync = launch.sync;
  p.timing = timing.kernel(launch.mem, launch.sync);
  p.endToEndSeconds = p.timing.totalSeconds + extraSeconds;
  p.endToEndGBps = gpusim::gbps(originalBytes, p.endToEndSeconds);
  p.wallSeconds = launch.wallSeconds;
  return p;
}

/// Tile-local compression scratch, pre-partitioned into one slot per pool
/// worker. A worker runs exactly one task at a time and each kernel-body
/// invocation fully re-initializes its slot, so slots never alias even
/// when several batched kernels interleave on the pool.
struct WorkerScratch {
  std::span<i32> quants;
  std::span<BlockPlan> plans;
  usize quantsPerWorker = 0;
  usize plansPerWorker = 0;
};

WorkerScratch makeWorkerScratch(Arena& arena, usize workers, u32 bpt,
                                u32 L) {
  WorkerScratch s;
  s.quantsPerWorker = static_cast<usize>(bpt) * L;
  s.plansPerWorker = bpt;
  s.quants = arena.allocSpan<i32>(workers * s.quantsPerWorker);
  s.plans = arena.allocSpan<BlockPlan>(workers * s.plansPerWorker);
  return s;
}

/// Everything one compress needs between preparation and finalization.
/// Prepared on the host, referenced by the (possibly batched) kernel body.
struct FieldJob {
  StreamHeader header;
  u64 n = 0;
  u64 originalBytes = 0;
  u32 tiles = 0;
  f64 rangeSeconds = 0.0;
  std::byte* staging = nullptr;  // header | offsets | payload, in the arena
  std::span<u64> tileInclusive;
  std::optional<TileSync> sync;
  gpusim::KernelDesc desc;
};

/// Host-side setup of one field's compression: error-bound resolution,
/// header, arena staging, scan state, and the kernel body. Mirrors the
/// seed one-shot pipeline exactly so the staged bytes are identical.
template <FloatingPoint T>
void prepareField(const Config& config, const gpusim::TimingModel& timing,
                  Arena& arena, const WorkerScratch& scratch, usize workers,
                  std::span<const T> data, FieldJob& job) {
  const u32 L = config.blockSize;
  const u32 bpt = config.blocksPerTile;
  const u64 n = data.size();
  job.n = n;
  job.originalBytes = n * sizeof(T);

  // Resolve the error bound. If only a REL bound is configured, reduce the
  // value range on-device first (one bandwidth-limited read of the input).
  f64 absEb = config.absErrorBound;
  if (absEb <= 0.0) {
    const f64 range = metrics::valueRange(data);
    absEb = Quantizer::absFromRel(config.relErrorBound, range);
    job.rangeSeconds = static_cast<f64>(job.originalBytes) /
                           (timing.spec().memBandwidthGBps * 1e9) +
                       timing.launchSeconds();
  }
  const Quantizer quantizer(absEb, config.roundingMode);

  job.header.precision = precisionOf<T>();
  job.header.mode = config.mode;
  job.header.predictor = config.predictor;
  job.header.blockSize = L;
  job.header.numElements = n;
  job.header.absErrorBound = absEb;

  const u64 numBlocks = job.header.numBlocks();
  job.tiles =
      static_cast<u32>(std::max<u64>(1, (numBlocks + bpt - 1) / bpt));

  const usize stagingBytes =
      job.header.payloadBegin() +
      static_cast<usize>(numBlocks) * maxPayloadSize(L);
  job.staging = static_cast<std::byte*>(arena.allocate(stagingBytes));
  job.header.serialize(job.staging);
  if (n == 0) return;  // desc.gridSize stays 0: nothing to launch

  std::byte* offsetBytes = job.staging + StreamHeader::offsetsBegin();
  std::byte* payloadOut = job.staging + job.header.payloadBegin();

  job.tileInclusive = arena.allocSpan<u64>(job.tiles);
  job.sync.emplace(config.syncAlgorithm, job.tiles, arena);

  const BlockCodec codec(L);
  const AccessRecorder access{config.vectorizedAccess,
                              timing.spec().transactionBytes};
  const Predictor predictor = config.predictor;
  const EncodingMode mode = config.mode;
  const T* values = data.data();
  TileSync* sync = &*job.sync;
  const std::span<u64> tileInclusive = job.tileInclusive;
  const std::span<i32> scratchQuants = scratch.quants;
  const std::span<BlockPlan> scratchPlans = scratch.plans;
  const usize quantsPerWorker = scratch.quantsPerWorker;
  const usize plansPerWorker = scratch.plansPerWorker;

  job.desc.gridSize = job.tiles;
  job.desc.body = [=](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    // Tile-local scratch slot (GPU shared-memory analogue): quantization
    // integers and per-block plans for this worker.
    const usize w = ThreadPool::currentWorkerIndex();
    require(w < workers, "CompressorStream: kernel body ran outside its "
                         "worker pool");
    const std::span<i32> quants =
        scratchQuants.subspan(w * quantsPerWorker, quantsPerWorker);
    const std::span<BlockPlan> plans =
        scratchPlans.subspan(w * plansPerWorker, plansPerWorker);

    // Pass 1 — fused lossy conversion + prediction + encoding analysis
    // (the "extra loop" that makes compression slower than decompression,
    // Sec. V-B).
    u64 aggregate = 0;
    u64 elemsRead = 0;
    for (u32 b = 0; b < blocksHere; ++b) {
      const u64 blockIdx = firstBlock + b;
      const u64 eFirst = blockIdx * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      std::span<i32> q(quants.data() + static_cast<usize>(b) * L, L);
      quantizeDiffBlock(quantizer,
                        std::span<const T>(values + eFirst, eLast - eFirst),
                        q);
      if (predictor == Predictor::SecondOrder) secondOrderDiff(q);
      elemsRead += eLast - eFirst;

      plans[b] = codec.planResiduals(q, mode);
      offsetBytes[blockIdx] = static_cast<std::byte>(plans[b].header.pack());
      aggregate += plans[b].payloadBytes;
    }
    access.read(ctx.mem, elemsRead * sizeof(T), sizeof(T));
    access.write(ctx.mem, blocksHere, 1);
    // Pass-1 analysis: quantize + diff + selection scan, ~12 integer ops
    // per element regardless of content. Quantization scratch lives in
    // shared memory.
    ctx.mem.noteOps(static_cast<u64>(blocksHere) * L * 12);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * L * 8);

    // Global prefix sum over tile aggregates (step 3).
    const u64 base =
        sync->processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);
    tileInclusive[ctx.blockIdx] = base + aggregate;

    // Pass 2 — encode payloads and concatenate (step 4).
    u64 cursor = base;
    for (u32 b = 0; b < blocksHere; ++b) {
      std::span<const i32> r(quants.data() + static_cast<usize>(b) * L, L);
      codec.encodeResiduals(r, plans[b], payloadOut + cursor);
      cursor += plans[b].payloadBytes;
    }
    access.write(ctx.mem, aggregate, 4);
    // Pass-2 encoding cost scales with the bytes actually packed: zero
    // blocks are skipped outright and well-compressed blocks pack fewer
    // planes, which is why sparse/smooth data compresses *faster* and why
    // CUSZP2-O can outrun CUSZP2-P when its ratio advantage is large
    // (paper Fig. 15 and Sec. V-B).
    ctx.mem.noteOps(aggregate * 6);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * L * 4);
  };
}

/// Turns a prepared + launched field into the public Compressed result:
/// checksum stamp, exact-size copy out of the staging area, profile.
Compressed finishField(const Config& config,
                       const gpusim::TimingModel& timing, FieldJob& job,
                       const gpusim::LaunchResult& launch) {
  Compressed out;
  out.originalBytes = job.originalBytes;
  if (job.n == 0) {
    out.stream.assign(job.staging, job.staging + StreamHeader::kBytes);
    out.ratio = 0.0;
    out.profile.endToEndSeconds = timing.launchSeconds();
    return out;
  }

  const u64 totalPayload = job.tileInclusive[job.tiles - 1];
  const usize finalBytes =
      job.header.payloadBegin() + static_cast<usize>(totalPayload);

  // Optional integrity stamp: CRC-32 over offsets + payload (one extra
  // bandwidth pass over the compressed bytes).
  f64 checksumSeconds = 0.0;
  if (config.checksum) {
    job.header.checksum = crc32(
        ConstByteSpan(job.staging + StreamHeader::offsetsBegin(),
                      finalBytes - StreamHeader::offsetsBegin()));
    if (job.header.checksum == 0) job.header.checksum = 1;  // 0 = "absent"
    job.header.serialize(job.staging);
    checksumSeconds = static_cast<f64>(finalBytes) /
                          (timing.spec().memBandwidthGBps * 1e9) +
                      timing.launchSeconds();
  }

  out.stream.assign(job.staging, job.staging + finalBytes);
  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing, out.originalBytes,
                            job.rangeSeconds + checksumSeconds);
  return out;
}

}  // namespace

CompressorStream::CompressorStream(Config config, gpusim::DeviceSpec device)
    : config_(config), timing_(std::move(device)), launcher_() {
  config_.validate();
}

void CompressorStream::reconfigure(const Config& config) {
  config.validate();
  config_ = config;
}

void CompressorStream::reconfigure(const Config& config,
                                   const gpusim::DeviceSpec& device) {
  reconfigure(config);
  timing_.setSpec(device);
}

template <FloatingPoint T>
Compressed CompressorStream::compress(std::span<const T> data) {
  arena_.reset();
  const usize workers = launcher_.workerCount();
  const WorkerScratch scratch = makeWorkerScratch(
      arena_, workers, config_.blocksPerTile, config_.blockSize);
  FieldJob job;
  prepareField(config_, timing_, arena_, scratch, workers, data, job);
  gpusim::LaunchResult launch;
  if (job.desc.gridSize > 0) {
    launch = launcher_.launch(job.desc.gridSize, job.desc.body);
  }
  return finishField(config_, timing_, job, launch);
}

template <FloatingPoint T>
std::vector<Compressed> CompressorStream::compressBatch(
    std::span<const std::span<const T>> fields) {
  arena_.reset();
  const usize workers = launcher_.workerCount();
  // One scratch shared by every kernel of the batch: slots are per worker,
  // and a worker runs one task at a time regardless of which kernel the
  // task belongs to.
  const WorkerScratch scratch = makeWorkerScratch(
      arena_, workers, config_.blocksPerTile, config_.blockSize);

  std::vector<FieldJob> jobs(fields.size());
  for (usize i = 0; i < fields.size(); ++i) {
    prepareField(config_, timing_, arena_, scratch, workers, fields[i],
                 jobs[i]);
  }

  std::vector<gpusim::KernelDesc> descs;
  descs.reserve(jobs.size());
  for (FieldJob& job : jobs) descs.push_back(std::move(job.desc));
  const auto launches = launcher_.launchBatch(descs);

  std::vector<Compressed> out;
  out.reserve(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    out.push_back(finishField(config_, timing_, jobs[i], launches[i]));
  }
  return out;
}

template <FloatingPoint T>
Decompressed<T> CompressorStream::decompress(ConstByteSpan stream) {
  arena_.reset();
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "decompress: stream precision does not match the requested type");

  // Integrity check when the stream carries a checksum.
  f64 checksumSeconds = 0.0;
  if (header.checksum != 0) {
    u32 crc = crc32(ConstByteSpan(
        stream.data() + StreamHeader::offsetsBegin(),
        stream.size() - StreamHeader::offsetsBegin()));
    if (crc == 0) crc = 1;
    require(crc == header.checksum,
            "decompress: checksum mismatch — the stream is corrupted");
    checksumSeconds = static_cast<f64>(stream.size()) /
                          (timing_.spec().memBandwidthGBps * 1e9) +
                      timing_.launchSeconds();
  }
  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();

  Decompressed<T> out;
  out.data.assign(n, T{});
  if (n == 0) {
    out.profile.endToEndSeconds = timing_.launchSeconds();
    return out;
  }

  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail = stream.size() - header.payloadBegin();

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  TileSync syncState(config_.syncAlgorithm, tiles, arena_);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  const auto launch = launcher_.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    // Read offset bytes; lengths fall out of the headers directly — no
    // second analysis loop, which is why decompression is faster (Sec. V-B).
    u64 aggregate = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      aggregate += payloadSize(h, L);
    }
    access.read(ctx.mem, blocksHere, 1);
    ctx.mem.noteOps(blocksHere * 2);

    const u64 base =
        syncState.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    u64 cursor = base;
    i32 quantsArr[256];
    u64 zeroBytes = 0;
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      const usize size = payloadSize(h, L);
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);

      if (!h.outlierMode && h.fixedLength == 0) {
        // Zero block: flush with device memset (paper Sec. V-B, JetIn).
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = T{};
        zeroBytes += (eLast - eFirst) * sizeof(T);
        continue;
      }

      require(cursor + size <= payloadAvail,
              "decompress: truncated payload region");
      std::span<i32> q(quantsArr, L);
      codec.decodeResiduals(h, payload + cursor, q);
      residualsToQuants(q, q, header.predictor);
      cursor += size;
      payloadBytesRead += size;
      for (u64 e = eFirst; e < eLast; ++e) {
        out.data[e] = quantizer.dequantize<T>(q[e - eFirst]);
      }
      decodedElems += eLast - eFirst;
    }
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteMemset(zeroBytes);
    ctx.mem.noteOps(decodedElems * 6);
    ctx.mem.noteL1(decodedElems * 8);
  });

  out.profile =
      makeProfile(launch, timing_, header.originalBytes(), checksumSeconds);
  return out;
}

template <FloatingPoint T>
BlockRange<T> CompressorStream::decompressBlocks(ConstByteSpan stream,
                                                 u64 firstBlock,
                                                 u64 blockCount) {
  arena_.reset();
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "decompressBlocks: stream precision mismatch");
  const u64 numBlocks = header.numBlocks();
  require(firstBlock < numBlocks && blockCount > 0 &&
              firstBlock + blockCount <= numBlocks,
          "decompressBlocks: block range out of bounds");

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));

  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail = stream.size() - header.payloadBegin();

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  TileSync syncState(config_.syncAlgorithm, tiles, arena_);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  BlockRange<T> out;
  out.firstElement = firstBlock * L;
  const u64 lastElement = std::min<u64>(n, (firstBlock + blockCount) * L);
  out.values.assign(lastElement - out.firstElement, T{});

  // The offset array alone is scanned (1 byte per block) to locate the
  // range; only the requested blocks run the decode path. This is why
  // random access reaches TB-level throughput relative to the original
  // data size (paper Fig. 20).
  const auto launch = launcher_.launch(tiles, [&](gpusim::BlockCtx& ctx) {
    const u64 tFirst = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 tLast = std::min(numBlocks, tFirst + bpt);

    u64 aggregate = 0;
    for (u64 blk = tFirst; blk < tLast; ++blk) {
      aggregate += payloadSize(
          BlockHeader::unpack(std::to_integer<u8>(offsetBytes[blk])), L);
    }
    access.read(ctx.mem, tLast - tFirst, 1);
    ctx.mem.noteOps((tLast - tFirst) * 2);

    const u64 base =
        syncState.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    if (tLast <= firstBlock || tFirst >= firstBlock + blockCount) return;

    u64 cursor = base;
    i32 quantsArr[256];
    for (u64 blk = tFirst; blk < tLast; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      const usize size = payloadSize(h, L);
      if (blk >= firstBlock && blk < firstBlock + blockCount) {
        require(cursor + size <= payloadAvail,
                "decompressBlocks: truncated payload region");
        std::span<i32> q(quantsArr, L);
        codec.decodeResiduals(h, payload + cursor, q);
        residualsToQuants(q, q, header.predictor);
        const u64 eFirst = blk * L;
        const u64 eLast = std::min<u64>(n, eFirst + L);
        for (u64 e = eFirst; e < eLast; ++e) {
          out.values[e - out.firstElement] = quantizer.dequantize<T>(
              q[e - eFirst]);
        }
        access.read(ctx.mem, size, 4);
        access.write(ctx.mem, (eLast - eFirst) * sizeof(T), sizeof(T));
        ctx.mem.noteOps((eLast - eFirst) * 6);
      }
      cursor += size;
    }
  });

  out.profile = makeProfile(launch, timing_, header.originalBytes());
  return out;
}

template <FloatingPoint T>
Compressed CompressorStream::replaceBlocks(ConstByteSpan stream,
                                           u64 firstBlock,
                                           std::span<const T> values) {
  arena_.reset();
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "replaceBlocks: stream precision mismatch");
  require(!values.empty(), "replaceBlocks: values must be non-empty");

  const u32 L = header.blockSize;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();
  const u64 blockCount = (values.size() + L - 1) / L;
  require(firstBlock < numBlocks && firstBlock + blockCount <= numBlocks,
          "replaceBlocks: block range out of bounds");
  const u64 eFirst = firstBlock * L;
  const u64 eLast = std::min<u64>(n, (firstBlock + blockCount) * L);
  require(values.size() == eLast - eFirst,
          "replaceBlocks: values must cover whole blocks (size must be "
          "a multiple of the block size or end at the stream tail)");

  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail = stream.size() - header.payloadBegin();

  // Locate the byte range of the replaced blocks and the payload total
  // (host-side scan; on the device this is the same offset-array pass the
  // random-access read performs).
  u64 rangeStart = 0;
  u64 rangeEnd = 0;
  u64 totalPayload = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    const usize size = payloadSize(
        BlockHeader::unpack(std::to_integer<u8>(offsetBytes[blk])), L);
    if (blk == firstBlock) rangeStart = totalPayload;
    totalPayload += size;
    if (blk == firstBlock + blockCount - 1) rangeEnd = totalPayload;
  }
  require(totalPayload <= payloadAvail, "replaceBlocks: truncated payload");

  // Re-encode the replacement blocks under the stream's bound and mode
  // (one small kernel).
  const Quantizer quantizer(header.absErrorBound, config_.roundingMode);
  const BlockCodec codec(L);
  const std::span<std::byte> newOffsets =
      arena_.allocSpan<std::byte>(blockCount);
  const std::span<std::byte> newPayload =
      arena_.allocSpan<std::byte>(blockCount * maxPayloadSize(L));
  const std::span<u64> newSizes = arena_.allocSpan<u64>(blockCount);
  const std::span<i32> blockScratch = arena_.allocSpan<i32>(L);
  const auto launch = launcher_.launch(1, [&](gpusim::BlockCtx& ctx) {
    std::span<i32> q = blockScratch;
    u64 cursor = 0;
    for (u64 b = 0; b < blockCount; ++b) {
      const u64 vFirst = b * L;
      const u64 vLast = std::min<u64>(values.size(), vFirst + L);
      quantizeDiffBlock(quantizer, values.subspan(vFirst, vLast - vFirst),
                        q);
      if (header.predictor == Predictor::SecondOrder) secondOrderDiff(q);
      const auto plan = codec.planResiduals(q, header.mode);
      newOffsets[b] = static_cast<std::byte>(plan.header.pack());
      codec.encodeResiduals(q, plan, newPayload.data() + cursor);
      newSizes[b] = plan.payloadBytes;
      cursor += plan.payloadBytes;
    }
    ctx.mem.noteVectorRead(values.size() * sizeof(T), 32);
    ctx.mem.noteScalarRead(numBlocks, 1, 32);  // offset-array scan
    ctx.mem.noteVectorWrite(cursor + blockCount, 32);
    ctx.mem.noteOps(values.size() * 16);
  });
  u64 newRangeBytes = 0;
  for (const u64 s : newSizes) newRangeBytes += s;

  // Splice: header | offsets (patched) | payload prefix | new | suffix.
  Compressed out;
  out.originalBytes = header.originalBytes();
  out.stream.reserve(header.payloadBegin() + totalPayload - (rangeEnd -
                     rangeStart) + newRangeBytes);
  out.stream.insert(out.stream.end(), stream.begin(),
                    stream.begin() + static_cast<usize>(
                        StreamHeader::offsetsBegin()));
  out.stream.insert(out.stream.end(), offsetBytes,
                    offsetBytes + firstBlock);
  out.stream.insert(out.stream.end(), newOffsets.begin(), newOffsets.end());
  out.stream.insert(out.stream.end(), offsetBytes + firstBlock + blockCount,
                    offsetBytes + numBlocks);
  out.stream.insert(out.stream.end(), payload, payload + rangeStart);
  out.stream.insert(out.stream.end(), newPayload.begin(),
                    newPayload.begin() + newRangeBytes);
  out.stream.insert(out.stream.end(), payload + rangeEnd,
                    payload + totalPayload);

  // Keep the integrity stamp valid after the splice.
  if (header.checksum != 0) {
    StreamHeader patched = header;
    patched.checksum = crc32(ConstByteSpan(
        out.stream.data() + StreamHeader::offsetsBegin(),
        out.stream.size() - StreamHeader::offsetsBegin()));
    if (patched.checksum == 0) patched.checksum = 1;
    patched.serialize(out.stream.data());
  }

  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing_, (eLast - eFirst) * sizeof(T));
  return out;
}

// Explicit instantiations of the public surface.
template Compressed CompressorStream::compress<f32>(std::span<const f32>);
template Compressed CompressorStream::compress<f64>(std::span<const f64>);
template std::vector<Compressed> CompressorStream::compressBatch<f32>(
    std::span<const std::span<const f32>>);
template std::vector<Compressed> CompressorStream::compressBatch<f64>(
    std::span<const std::span<const f64>>);
template Decompressed<f32> CompressorStream::decompress<f32>(ConstByteSpan);
template Decompressed<f64> CompressorStream::decompress<f64>(ConstByteSpan);
template BlockRange<f32> CompressorStream::decompressBlocks<f32>(
    ConstByteSpan, u64, u64);
template BlockRange<f64> CompressorStream::decompressBlocks<f64>(
    ConstByteSpan, u64, u64);
template Compressed CompressorStream::replaceBlocks<f32>(
    ConstByteSpan, u64, std::span<const f32>);
template Compressed CompressorStream::replaceBlocks<f64>(
    ConstByteSpan, u64, std::span<const f64>);

}  // namespace cuszp2::core
