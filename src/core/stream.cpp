#include "core/stream.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <optional>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "core/block_codec.hpp"
#include "core/quantizer.hpp"
#include "core/stream_internal.hpp"
#include "metrics/error_stats.hpp"
#include "scan/chained.hpp"
#include "scan/lookback.hpp"
#include "telemetry/trace.hpp"

namespace cuszp2::core {

namespace {

/// Unified per-tile synchronization over either protocol, so the kernels
/// are written once (ablations switch the algorithm, Sec. VI-E). The flag
/// words live in the stream's arena: repeated scans allocate nothing.
class TileSync {
 public:
  TileSync(scan::Algorithm algo, u32 tiles, Arena& arena)
      : algo_(algo),
        lookback_(tilesFor(algo, scan::Algorithm::DecoupledLookback, tiles),
                  arena.allocSpan<std::atomic<u64>>(
                      tilesFor(algo, scan::Algorithm::DecoupledLookback,
                               tiles))),
        chained_(tilesFor(algo, scan::Algorithm::ChainedScan, tiles),
                 arena.allocSpan<std::atomic<u64>>(
                     tilesFor(algo, scan::Algorithm::ChainedScan, tiles))) {}

  u64 processTile(u32 tile, u64 aggregate, gpusim::SyncStats& sync,
                  gpusim::MemCounters& mem) {
    return algo_ == scan::Algorithm::DecoupledLookback
               ? lookback_.processTile(tile, aggregate, sync, mem)
               : chained_.processTile(tile, aggregate, sync, mem);
  }

 private:
  static u32 tilesFor(scan::Algorithm algo, scan::Algorithm wanted,
                      u32 tiles) {
    return algo == wanted ? tiles : 1;
  }

  scan::Algorithm algo_;
  scan::LookbackState lookback_;
  scan::ChainedScanState chained_;
};

// Stage helpers shared with the format-v3 pipeline (stream_v3.cpp):
// access-pattern recording, prediction inverses, dequantization, and
// profile assembly all live in stream_internal.hpp now.
using detail::AccessRecorder;
using detail::dequantizeSpan;
using detail::makeProfile;
using detail::residualsToQuants;
using detail::secondOrderDiff;

/// Tile-local compression scratch, pre-partitioned into one slot per pool
/// worker. A worker runs exactly one task at a time and each kernel-body
/// invocation fully re-initializes its slot, so slots never alias even
/// when several batched kernels interleave on the pool.
struct WorkerScratch {
  std::span<i32> quants;
  std::span<BlockPlan> plans;
  usize quantsPerWorker = 0;
  usize plansPerWorker = 0;
};

WorkerScratch makeWorkerScratch(Arena& arena, usize workers, u32 bpt,
                                u32 L) {
  WorkerScratch s;
  s.quantsPerWorker = static_cast<usize>(bpt) * L;
  s.plansPerWorker = bpt;
  s.quants = arena.allocSpan<i32>(workers * s.quantsPerWorker);
  s.plans = arena.allocSpan<BlockPlan>(workers * s.plansPerWorker);
  return s;
}

/// Everything one compress needs between preparation and finalization.
/// Prepared on the host, referenced by the (possibly batched) kernel body.
struct FieldJob {
  StreamHeader header;
  u64 n = 0;
  u64 originalBytes = 0;
  u32 tiles = 0;
  f64 rangeSeconds = 0.0;
  std::byte* staging = nullptr;  // header | offsets | payload, in the arena
  usize stagingBytes = 0;
  std::span<u64> tileInclusive;
  /// Per-tile CRC-32 over the tile's written offset + payload bytes,
  /// computed inside the kernel when fault verification is on
  /// (Config::faultRetries > 0); the host re-derives them from the staging
  /// memory after the launch to detect injected write faults.
  std::span<u32> tileWriteCrc;
  std::optional<TileSync> sync;
  gpusim::KernelDesc desc;
};

/// Host-side setup of one field's compression: error-bound resolution,
/// header, arena staging, scan state, and the kernel body. Mirrors the
/// seed one-shot pipeline exactly so the staged bytes are identical.
template <FloatingPoint T>
void prepareField(const Config& config, const gpusim::TimingModel& timing,
                  Arena& arena, const WorkerScratch& scratch, usize workers,
                  std::span<const T> data, FieldJob& job) {
  const u32 L = config.blockSize;
  const u32 bpt = config.blocksPerTile;
  const u64 n = data.size();
  job.n = n;
  job.originalBytes = n * sizeof(T);

  // Resolve the error bound. If only a REL bound is configured, reduce the
  // value range on-device first (one bandwidth-limited read of the input).
  f64 absEb = config.absErrorBound;
  if (absEb <= 0.0) {
    const f64 range = metrics::valueRange(data);
    absEb = Quantizer::absFromRel(config.relErrorBound, range);
    job.rangeSeconds = static_cast<f64>(job.originalBytes) /
                           (timing.spec().memBandwidthGBps * 1e9) +
                       timing.launchSeconds();
  }
  const Quantizer quantizer(absEb, config.roundingMode);

  job.header.version =
      config.blockChecksums ? kFormatVersionV2 : kFormatVersion;
  job.header.precision = precisionOf<T>();
  job.header.mode = config.mode;
  job.header.predictor = config.predictor;
  job.header.blockSize = L;
  job.header.numElements = n;
  job.header.absErrorBound = absEb;

  const u64 numBlocks = job.header.numBlocks();
  job.tiles =
      static_cast<u32>(std::max<u64>(1, (numBlocks + bpt - 1) / bpt));

  job.stagingBytes = job.header.payloadBegin() +
                     static_cast<usize>(numBlocks) * maxPayloadSize(L) +
                     job.header.footerBytes();
  job.staging = static_cast<std::byte*>(arena.allocate(job.stagingBytes));
  job.header.serialize(job.staging);
  if (n == 0) return;  // desc.gridSize stays 0: nothing to launch

  std::byte* offsetBytes = job.staging + StreamHeader::offsetsBegin();
  std::byte* payloadOut = job.staging + job.header.payloadBegin();

  job.tileInclusive = arena.allocSpan<u64>(job.tiles);
  if (config.faultRetries > 0) {
    job.tileWriteCrc = arena.allocSpan<u32>(job.tiles);
  }
  job.sync.emplace(config.syncAlgorithm, job.tiles, arena);

  const BlockCodec codec(L);
  const AccessRecorder access{config.vectorizedAccess,
                              timing.spec().transactionBytes};
  const Predictor predictor = config.predictor;
  const EncodingMode mode = config.mode;
  const T* values = data.data();
  TileSync* sync = &*job.sync;
  const std::span<u64> tileInclusive = job.tileInclusive;
  const std::span<u32> tileWriteCrc = job.tileWriteCrc;
  const std::span<i32> scratchQuants = scratch.quants;
  const std::span<BlockPlan> scratchPlans = scratch.plans;
  const usize quantsPerWorker = scratch.quantsPerWorker;
  const usize plansPerWorker = scratch.plansPerWorker;

  job.desc.gridSize = job.tiles;
  job.desc.name = "compress";
  job.desc.body = [=](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    // Tile-local scratch slot (GPU shared-memory analogue): quantization
    // integers and per-block plans for this worker.
    const usize w = ThreadPool::currentWorkerIndex();
    require(w < workers, "CompressorStream: kernel body ran outside its "
                         "worker pool");
    const std::span<i32> quants =
        scratchQuants.subspan(w * quantsPerWorker, quantsPerWorker);
    const std::span<BlockPlan> plans =
        scratchPlans.subspan(w * plansPerWorker, plansPerWorker);

    // Pass 1 — fused lossy conversion + prediction + encoding analysis
    // (the "extra loop" that makes compression slower than decompression,
    // Sec. V-B).
    u64 aggregate = 0;
    u64 elemsRead = 0;
    for (u32 b = 0; b < blocksHere; ++b) {
      const u64 blockIdx = firstBlock + b;
      const u64 eFirst = blockIdx * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      std::span<i32> q(quants.data() + static_cast<usize>(b) * L, L);
      quantizeDiffBlock(quantizer,
                        std::span<const T>(values + eFirst, eLast - eFirst),
                        q);
      if (predictor == Predictor::SecondOrder) secondOrderDiff(q);
      elemsRead += eLast - eFirst;

      plans[b] = codec.planResiduals(q, mode);
      offsetBytes[blockIdx] = static_cast<std::byte>(plans[b].header.pack());
      aggregate += plans[b].payloadBytes;
    }
    access.read(ctx.mem, elemsRead * sizeof(T), sizeof(T));
    access.write(ctx.mem, blocksHere, 1);
    // Pass-1 analysis: quantize + diff + selection scan, ~12 integer ops
    // per element regardless of content. Quantization scratch lives in
    // shared memory.
    ctx.mem.noteOps(static_cast<u64>(blocksHere) * L * 12);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * L * 8);

    // Global prefix sum over tile aggregates (step 3).
    const u64 base =
        sync->processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);
    tileInclusive[ctx.blockIdx] = base + aggregate;

    // Pass 2 — encode payloads and concatenate (step 4). Under fault
    // verification the tile also digests the bytes it just wrote (reading
    // back its own stores, before any soft error can land), giving the
    // host a ground truth to re-derive from memory after the launch.
    u64 cursor = base;
    u32 writeCrc = 0;
    for (u32 b = 0; b < blocksHere; ++b) {
      std::span<const i32> r(quants.data() + static_cast<usize>(b) * L, L);
      codec.encodeResiduals(r, plans[b], payloadOut + cursor);
      if (!tileWriteCrc.empty()) {
        writeCrc = crc32(
            ConstByteSpan(offsetBytes + firstBlock + b, 1), writeCrc);
        writeCrc = crc32(
            ConstByteSpan(payloadOut + cursor, plans[b].payloadBytes),
            writeCrc);
      }
      cursor += plans[b].payloadBytes;
    }
    if (!tileWriteCrc.empty()) tileWriteCrc[ctx.blockIdx] = writeCrc;
    access.write(ctx.mem, aggregate, 4);
    // Pass-2 encoding cost scales with the bytes actually packed: zero
    // blocks are skipped outright and well-compressed blocks pack fewer
    // planes, which is why sparse/smooth data compresses *faster* and why
    // CUSZP2-O can outrun CUSZP2-P when its ratio advantage is large
    // (paper Fig. 15 and Sec. V-B).
    ctx.mem.noteOps(aggregate * 6);
    ctx.mem.noteL1(static_cast<u64>(blocksHere) * L * 4);
  };
}

/// Turns a prepared + launched field into the public Compressed result:
/// checksum stamp, exact-size copy out of the staging area, profile.
Compressed finishField(const Config& config,
                       const gpusim::TimingModel& timing, FieldJob& job,
                       const gpusim::LaunchResult& launch) {
  Compressed out;
  out.originalBytes = job.originalBytes;
  if (job.n == 0) {
    out.stream.assign(job.staging, job.staging + StreamHeader::kBytes);
    out.ratio = 0.0;
    out.profile.endToEndSeconds = timing.launchSeconds();
    return out;
  }

  const u64 totalPayload = job.tileInclusive[job.tiles - 1];
  usize finalBytes =
      job.header.payloadBegin() + static_cast<usize>(totalPayload);
  f64 checksumSeconds = 0.0;

  // Version 2: per-block CRC footer after the payload region (one extra
  // bandwidth pass over the compressed bytes).
  if (job.header.hasBlockChecksums()) {
    const std::byte* offsets = job.staging + StreamHeader::offsetsBegin();
    const std::byte* payload = job.staging + job.header.payloadBegin();
    std::byte* footer = job.staging + finalBytes;
    const u64 numBlocks = job.header.numBlocks();
    const PayloadSizeTable psize(job.header.blockSize);
    u64 cursor = 0;
    for (u64 blk = 0; blk < numBlocks; ++blk) {
      const usize size = psize[offsets[blk]];
      const u16 digest =
          blockDigest(offsets[blk], ConstByteSpan(payload + cursor, size));
      footer[2 * blk] = static_cast<std::byte>(digest & 0xFFu);
      footer[2 * blk + 1] = static_cast<std::byte>(digest >> 8);
      cursor += size;
    }
    finalBytes += job.header.footerBytes();
    checksumSeconds += static_cast<f64>(finalBytes) /
                           (timing.spec().memBandwidthGBps * 1e9) +
                       timing.launchSeconds();
  }

  // Optional integrity stamp: CRC-32 over offsets + payload (+ footer).
  if (config.checksum) {
    job.header.checksum = crc32(
        ConstByteSpan(job.staging + StreamHeader::offsetsBegin(),
                      finalBytes - StreamHeader::offsetsBegin()));
    if (job.header.checksum == 0) job.header.checksum = 1;  // 0 = "absent"
    job.header.serialize(job.staging);
    checksumSeconds += static_cast<f64>(finalBytes) /
                           (timing.spec().memBandwidthGBps * 1e9) +
                       timing.launchSeconds();
  }

  out.stream.assign(job.staging, job.staging + finalBytes);
  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing, out.originalBytes,
                            job.rangeSeconds + checksumSeconds);
  return out;
}

/// Host re-derivation of the compress kernel's per-tile write digests from
/// the staging memory. A soft error injected into the staged offset or
/// payload bytes after the kernel's stores retire changes this walk (the
/// sizes, the bytes, or both), so any mismatch against the in-kernel
/// digests means the written output is corrupt.
bool compressWriteDigestsMatch(const FieldJob& job, u32 bpt) {
  if (job.tileWriteCrc.empty()) return true;
  const u32 L = job.header.blockSize;
  const u64 numBlocks = job.header.numBlocks();
  const std::byte* offsets = job.staging + StreamHeader::offsetsBegin();
  const std::byte* payload = job.staging + job.header.payloadBegin();
  const PayloadSizeTable psize(L);
  u64 cursor = 0;
  for (u32 t = 0; t < job.tiles; ++t) {
    const u64 firstBlock = static_cast<u64>(t) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    u32 crc = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const usize size = psize[offsets[blk]];
      crc = crc32(ConstByteSpan(offsets + blk, 1), crc);
      crc = crc32(ConstByteSpan(payload + cursor, size), crc);
      cursor += size;
    }
    if (crc != job.tileWriteCrc[t]) return false;
  }
  return true;
}

[[noreturn]] void throwPayloadOverrun(const char* api, u64 block,
                                      u64 byteOffset, usize need,
                                      usize avail) {
  throw Error(std::string(api) +
              ": offset bytes imply a payload overrun at block " +
              std::to_string(block) + " (stream byte offset " +
              std::to_string(byteOffset) + ", needs " +
              std::to_string(need) + " bytes, " + std::to_string(avail) +
              " available) — the offset region is corrupt or the stream "
              "is truncated");
}

/// Strict-mode layout validation, before any payload read: the
/// prefix-summed per-block payload sizes must stay inside the stream's
/// payload region, version-2 streams must frame exactly (payload end +
/// footer == stream end), and version-2 per-block digests covering
/// [digestFirst, digestFirst + digestCount) must match. Throws Error
/// naming the failing block index and byte offset. Returns the total
/// payload size.
u64 validateStrictLayout(const char* api, const StreamHeader& header,
                         ConstByteSpan stream, u64 digestFirst,
                         u64 digestCount) {
  const u32 L = header.blockSize;
  const u64 numBlocks = header.numBlocks();
  const usize payloadBegin = header.payloadBegin();
  const usize footerB = header.footerBytes();
  const usize payloadAvail = stream.size() - payloadBegin - footerB;
  const std::byte* offsets = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + payloadBegin;
  // The version-2 footer occupies the stream's trailing bytes.
  const std::byte* footer = stream.data() + (stream.size() - footerB);
  const PayloadSizeTable psize(L);

  u64 cursor = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    const std::byte offsetByte = offsets[blk];
    const usize size = psize[offsetByte];
    if (cursor + size > payloadAvail) {
      throwPayloadOverrun(api, blk, payloadBegin + cursor, size,
                          payloadAvail - std::min<usize>(payloadAvail,
                                                         cursor));
    }
    if (header.hasBlockChecksums() && blk >= digestFirst &&
        blk < digestFirst + digestCount) {
      const u16 stored =
          static_cast<u16>(std::to_integer<u16>(footer[2 * blk]) |
                           (std::to_integer<u16>(footer[2 * blk + 1]) << 8));
      const u16 actual =
          blockDigest(offsetByte, ConstByteSpan(payload + cursor, size));
      if (stored != actual) {
        throw Error(std::string(api) +
                    ": per-block checksum mismatch at block " +
                    std::to_string(blk) + " (stream byte offset " +
                    std::to_string(payloadBegin + cursor) +
                    ") — the stream is corrupted");
      }
    }
    cursor += size;
  }
  if (header.hasBlockChecksums() &&
      payloadBegin + cursor + footerB != stream.size()) {
    throw Error(std::string(api) +
                ": version-2 stream framing mismatch (offset bytes imply " +
                std::to_string(payloadBegin + cursor + footerB) +
                " bytes, stream has " + std::to_string(stream.size()) +
                ") — the stream is corrupted or truncated");
  }
  return cursor;
}

}  // namespace

CompressorStream::CompressorStream(Config config, gpusim::DeviceSpec device)
    : config_(config), timing_(std::move(device)), launcher_() {
  config_.validate();
  launcher_.setTimingModel(&timing_);
  telemetry::MetricsRegistry& reg = telemetry::registry();
  instruments_.compressCalls = &reg.counter("stream.compress.calls");
  instruments_.compressBytesIn = &reg.counter("stream.compress.bytes_in");
  instruments_.compressBytesOut = &reg.counter("stream.compress.bytes_out");
  instruments_.decompressCalls = &reg.counter("stream.decompress.calls");
  instruments_.decompressBytesIn =
      &reg.counter("stream.decompress.bytes_in");
  instruments_.decompressBytesOut =
      &reg.counter("stream.decompress.bytes_out");
  instruments_.replaceBlocksCalls =
      &reg.counter("stream.replace_blocks.calls");
  instruments_.salvageCalls = &reg.counter("stream.salvage.calls");
  instruments_.salvageBadBlocks = &reg.counter("stream.salvage.bad_blocks");
  instruments_.faultsDetected = &reg.counter("stream.faults_detected");
  instruments_.faultRelaunches = &reg.counter("stream.fault_relaunches");
  instruments_.arenaHighWater = &reg.gauge("stream.arena_high_water");
  instruments_.lastGBps = &reg.gauge("stream.last_gbps");
}

void CompressorStream::noteFaultDetected() {
  ++faultsDetected_;
  instruments_.faultsDetected->add(1);
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->instant("fault_detected");
  }
}

void CompressorStream::noteFaultRelaunch() {
  ++faultRelaunches_;
  instruments_.faultRelaunches->add(1);
  if (telemetry::TraceSession* trace = telemetry::activeTrace()) {
    trace->instant("fault_relaunch");
  }
}

void CompressorStream::noteCompressed(const Compressed& out) {
  instruments_.compressCalls->add(1);
  instruments_.compressBytesIn->add(out.originalBytes);
  instruments_.compressBytesOut->add(out.stream.size());
  instruments_.arenaHighWater->set(
      static_cast<f64>(arena_.stats().highWater));
  instruments_.lastGBps->set(out.profile.endToEndGBps);
}

void CompressorStream::noteDecompressed(u64 streamBytes, u64 decodedBytes,
                                        f64 gbps) {
  instruments_.decompressCalls->add(1);
  instruments_.decompressBytesIn->add(streamBytes);
  instruments_.decompressBytesOut->add(decodedBytes);
  instruments_.arenaHighWater->set(
      static_cast<f64>(arena_.stats().highWater));
  instruments_.lastGBps->set(gbps);
}

void CompressorStream::reconfigure(const Config& config) {
  config.validate();
  config_ = config;
}

void CompressorStream::reconfigure(const Config& config,
                                   const gpusim::DeviceSpec& device) {
  reconfigure(config);
  timing_.setSpec(device);
}

void CompressorStream::applyInjectedArenaBudget() {
  arena_.clearFailureBudget();
  if (const std::optional<u64> budget = launcher_.takeArenaFault()) {
    arena_.setFailureBudget(static_cast<usize>(*budget));
  }
}

gpusim::LaunchResult CompressorStream::launchVerified(
    const gpusim::KernelDesc& desc, std::span<std::byte> faultTarget,
    const std::function<bool()>& verify,
    const std::function<void()>& rearm) {
  for (u32 attempt = 0;; ++attempt) {
    std::exception_ptr failure;
    gpusim::LaunchResult launch;
    bool ok = false;
    try {
      launch = launcher_.launch(desc.gridSize, desc.body,
                                desc.blocksPerTask, faultTarget, desc.name);
      ok = verify();
    } catch (const Error&) {
      failure = std::current_exception();
    }
    if (ok) return launch;
    noteFaultDetected();
    if (attempt >= config_.faultRetries) {
      if (failure) std::rethrow_exception(failure);
      throw Error("CompressorStream: kernel output still corrupt after " +
                  std::to_string(config_.faultRetries) +
                  " fault retries — giving up");
    }
    noteFaultRelaunch();
    rearm();
  }
}

/// The byte region the compress kernel writes: offset bytes + the payload
/// staging capacity (a fault landing past the final payload byte is
/// harmless by construction — those bytes never reach the stream).
std::span<std::byte> compressFaultTarget(const FieldJob& job) {
  return {job.staging + StreamHeader::offsetsBegin(),
          job.stagingBytes - StreamHeader::kBytes -
              job.header.footerBytes()};
}

template <FloatingPoint T>
Compressed CompressorStream::compress(std::span<const T> data) {
  if (config_.pipeline != PipelineMode::Legacy) return compressV3<T>(data);
  arena_.reset();
  applyInjectedArenaBudget();
  const usize workers = launcher_.workerCount();
  const WorkerScratch scratch = makeWorkerScratch(
      arena_, workers, config_.blocksPerTile, config_.blockSize);
  FieldJob job;
  prepareField(config_, timing_, arena_, scratch, workers, data, job);
  gpusim::LaunchResult launch;
  if (job.desc.gridSize > 0) {
    if (config_.faultRetries > 0) {
      launch = launchVerified(
          job.desc, compressFaultTarget(job),
          [&] { return compressWriteDigestsMatch(job, config_.blocksPerTile); },
          [&] {
            job.sync.emplace(config_.syncAlgorithm, job.tiles, arena_);
          });
    } else {
      launch = launcher_.launch(job.desc.gridSize, job.desc.body,
                                job.desc.blocksPerTask, {}, job.desc.name);
    }
  }
  Compressed out = finishField(config_, timing_, job, launch);
  noteCompressed(out);
  return out;
}

template <FloatingPoint T>
std::vector<Compressed> CompressorStream::compressBatch(
    std::span<const std::span<const T>> fields) {
  // Format-v3 compression is a two-kernel pass with a host selection stage
  // between them, which cannot interleave inside one fused launch; each
  // field compresses on its own (byte-identical to compress(fields[i])).
  if (config_.pipeline != PipelineMode::Legacy) {
    std::vector<Compressed> out;
    out.reserve(fields.size());
    for (const std::span<const T>& field : fields) {
      out.push_back(compressV3<T>(field));
    }
    return out;
  }
  arena_.reset();
  applyInjectedArenaBudget();
  const usize workers = launcher_.workerCount();
  // One scratch shared by every kernel of the batch: slots are per worker,
  // and a worker runs one task at a time regardless of which kernel the
  // task belongs to.
  const WorkerScratch scratch = makeWorkerScratch(
      arena_, workers, config_.blocksPerTile, config_.blockSize);

  std::vector<FieldJob> jobs(fields.size());
  for (usize i = 0; i < fields.size(); ++i) {
    prepareField(config_, timing_, arena_, scratch, workers, fields[i],
                 jobs[i]);
    if (config_.faultRetries > 0) {
      jobs[i].desc.faultTarget = compressFaultTarget(jobs[i]);
    }
  }

  std::vector<gpusim::KernelDesc> descs;
  descs.reserve(jobs.size());
  for (FieldJob& job : jobs) descs.push_back(std::move(job.desc));
  auto launches = launcher_.launchBatch(descs);

  // Per-field fault verification: a corrupt field is relaunched on its
  // own (the surviving fields' results are kept).
  if (config_.faultRetries > 0) {
    for (usize i = 0; i < jobs.size(); ++i) {
      if (descs[i].gridSize == 0 ||
          compressWriteDigestsMatch(jobs[i], config_.blocksPerTile)) {
        continue;
      }
      noteFaultDetected();
      noteFaultRelaunch();
      jobs[i].sync.emplace(config_.syncAlgorithm, jobs[i].tiles, arena_);
      launches[i] = launchVerified(
          descs[i], compressFaultTarget(jobs[i]),
          [&, i] {
            return compressWriteDigestsMatch(jobs[i], config_.blocksPerTile);
          },
          [&, i] {
            jobs[i].sync.emplace(config_.syncAlgorithm, jobs[i].tiles,
                                 arena_);
          });
    }
  }

  std::vector<Compressed> out;
  out.reserve(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    out.push_back(finishField(config_, timing_, jobs[i], launches[i]));
    noteCompressed(out.back());
  }
  return out;
}

template <FloatingPoint T>
Decompressed<T> CompressorStream::decompress(ConstByteSpan stream) {
  arena_.reset();
  applyInjectedArenaBudget();
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "decompress: stream precision does not match the requested type");
  if (header.version >= kFormatVersionV3) {
    return decompressV3<T>(stream, header);
  }

  // Integrity check when the stream carries a checksum.
  f64 checksumSeconds = 0.0;
  if (header.checksum != 0) {
    u32 crc = crc32(ConstByteSpan(
        stream.data() + StreamHeader::offsetsBegin(),
        stream.size() - StreamHeader::offsetsBegin()));
    if (crc == 0) crc = 1;
    require(crc == header.checksum,
            "decompress: checksum mismatch — the stream is corrupted");
    checksumSeconds = static_cast<f64>(stream.size()) /
                          (timing_.spec().memBandwidthGBps * 1e9) +
                      timing_.launchSeconds();
  }

  // Layout validation before any payload read: the prefix-summed payload
  // sizes must stay inside the stream, and version-2 per-block digests
  // must match (one extra bandwidth pass over the compressed bytes).
  validateStrictLayout("decompress", header, stream, 0, header.numBlocks());
  if (header.hasBlockChecksums()) {
    checksumSeconds += static_cast<f64>(stream.size()) /
                           (timing_.spec().memBandwidthGBps * 1e9) +
                       timing_.launchSeconds();
  }

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();

  Decompressed<T> out;
  out.data.assign(n, T{});
  if (n == 0) {
    out.profile.endToEndSeconds = timing_.launchSeconds();
    noteDecompressed(stream.size(), 0, 0.0);
    return out;
  }

  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail =
      stream.size() - header.payloadBegin() - header.footerBytes();

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  const PayloadSizeTable psize(L);
  std::optional<TileSync> syncState;
  syncState.emplace(config_.syncAlgorithm, tiles, arena_);
  std::span<u32> tileWriteCrc;
  if (config_.faultRetries > 0) {
    tileWriteCrc = arena_.allocSpan<u32>(tiles);
  }
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  gpusim::KernelDesc desc;
  desc.gridSize = tiles;
  desc.name = "decompress";
  desc.body = [&, tileWriteCrc](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    // Read offset bytes; lengths fall out of the headers directly — no
    // second analysis loop, which is why decompression is faster (Sec. V-B).
    u64 aggregate = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      aggregate += psize[offsetBytes[blk]];
    }
    access.read(ctx.mem, blocksHere, 1);
    ctx.mem.noteOps(blocksHere * 2);

    const u64 base =
        syncState->processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    u64 cursor = base;
    i32 quantsArr[256];
    u64 zeroBytes = 0;
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      const usize size = psize[offsetBytes[blk]];
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);

      if (!h.outlierMode && h.fixedLength == 0) {
        // Zero block: flush with device memset (paper Sec. V-B, JetIn).
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = T{};
        zeroBytes += (eLast - eFirst) * sizeof(T);
        continue;
      }

      require(cursor + size <= payloadAvail,
              "decompress: truncated payload region");
      std::span<i32> q(quantsArr, L);
      codec.decodeResiduals(h, payload + cursor, q);
      residualsToQuants(q, q, header.predictor);
      cursor += size;
      payloadBytesRead += size;
      dequantizeSpan(quantizer,
                     std::span<const i32>(quantsArr, eLast - eFirst),
                     out.data.data() + eFirst);
      decodedElems += eLast - eFirst;
    }
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteMemset(zeroBytes);
    ctx.mem.noteOps(decodedElems * 6);
    ctx.mem.noteL1(decodedElems * 8);

    // Fault verification: digest the output elements this tile just wrote
    // (reading back its own stores, before a soft error can land).
    if (!tileWriteCrc.empty()) {
      const u64 eFirst = firstBlock * L;
      const u64 eLast = std::min<u64>(n, lastBlock * L);
      tileWriteCrc[ctx.blockIdx] = crc32(ConstByteSpan(
          reinterpret_cast<const std::byte*>(out.data.data() + eFirst),
          (eLast - eFirst) * sizeof(T)));
    }
  };

  gpusim::LaunchResult launch;
  if (config_.faultRetries > 0) {
    const std::span<std::byte> outBytes(
        reinterpret_cast<std::byte*>(out.data.data()), n * sizeof(T));
    const auto verify = [&, tileWriteCrc] {
      for (u32 t = 0; t < tiles; ++t) {
        const u64 eFirst = static_cast<u64>(t) * bpt * L;
        const u64 eLast = std::min<u64>(
            n, std::min<u64>(numBlocks, static_cast<u64>(t) * bpt + bpt) * L);
        const u32 crc = crc32(ConstByteSpan(
            reinterpret_cast<const std::byte*>(out.data.data() + eFirst),
            (eLast - eFirst) * sizeof(T)));
        if (crc != tileWriteCrc[t]) return false;
      }
      return true;
    };
    launch = launchVerified(desc, outBytes, verify, [&] {
      syncState.emplace(config_.syncAlgorithm, tiles, arena_);
    });
  } else {
    launch = launcher_.launch(tiles, desc.body, desc.blocksPerTask, {},
                              desc.name);
  }

  out.profile =
      makeProfile(launch, timing_, header.originalBytes(), checksumSeconds);
  noteDecompressed(stream.size(), n * sizeof(T), out.profile.endToEndGBps);
  return out;
}

namespace {

/// Per-stream state of one member of a fused decompress batch. Everything
/// the kernel body references by pointer must outlive the launch, so the
/// jobs vector is sized once up front and never reallocated.
struct DecodeJob {
  StreamHeader header;
  const std::byte* offsetBytes = nullptr;
  const std::byte* payload = nullptr;
  usize payloadAvail = 0;
  u32 tiles = 1;
  std::optional<TileSync> sync;
  f64 checksumSeconds = 0.0;
  gpusim::KernelDesc desc;
};

/// Builds the strict decode kernel body for one stream of a fused batch:
/// the same per-tile walk as decompress() minus the write-digest pass
/// (fault-injection configs take the serial fallback instead). Small
/// per-block state (codec, quantizer, size table) is captured by value so
/// the body stays self-contained once enqueued.
template <FloatingPoint T>
void buildDecodeKernel(const Config& config,
                       const gpusim::TimingModel& timing, DecodeJob& job,
                       std::byte* outBytes) {
  const u32 L = job.header.blockSize;
  const u32 bpt = config.blocksPerTile;
  const u64 n = job.header.numElements;
  const u64 numBlocks = job.header.numBlocks();
  T* out = reinterpret_cast<T*>(outBytes);
  const std::byte* offsetBytes = job.offsetBytes;
  const std::byte* payload = job.payload;
  const usize payloadAvail = job.payloadAvail;
  TileSync* sync = &*job.sync;
  const Quantizer quantizer(job.header.absErrorBound);
  const BlockCodec codec(L);
  const PayloadSizeTable psize(L);
  const AccessRecorder access{config.vectorizedAccess,
                              timing.spec().transactionBytes};
  const Predictor predictor = job.header.predictor;

  job.desc.gridSize = job.tiles;
  job.desc.name = "decompress";
  job.desc.body = [=](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    const u32 blocksHere = static_cast<u32>(lastBlock - firstBlock);

    u64 aggregate = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      aggregate += psize[offsetBytes[blk]];
    }
    access.read(ctx.mem, blocksHere, 1);
    ctx.mem.noteOps(blocksHere * 2);

    const u64 base =
        sync->processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    u64 cursor = base;
    i32 quantsArr[256];
    u64 zeroBytes = 0;
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const auto h =
          BlockHeader::unpack(std::to_integer<u8>(offsetBytes[blk]));
      const usize size = psize[offsetBytes[blk]];
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);

      if (!h.outlierMode && h.fixedLength == 0) {
        for (u64 e = eFirst; e < eLast; ++e) out[e] = T{};
        zeroBytes += (eLast - eFirst) * sizeof(T);
        continue;
      }

      require(cursor + size <= payloadAvail,
              "decompressBatch: truncated payload region");
      std::span<i32> q(quantsArr, L);
      codec.decodeResiduals(h, payload + cursor, q);
      residualsToQuants(q, q, predictor);
      cursor += size;
      payloadBytesRead += size;
      dequantizeSpan(quantizer,
                     std::span<const i32>(quantsArr, eLast - eFirst),
                     out + eFirst);
      decodedElems += eLast - eFirst;
    }
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteMemset(zeroBytes);
    ctx.mem.noteOps(decodedElems * 6);
    ctx.mem.noteL1(decodedElems * 8);
  };
}

/// Serial-fallback copy: one typed decompress flattened to raw bytes.
template <FloatingPoint T>
void decompressSerialRaw(CompressorStream& self, ConstByteSpan stream,
                         DecompressedRaw& out) {
  Decompressed<T> d = self.decompress<T>(stream);
  out.elements = d.data.size();
  out.precision = precisionOf<T>();
  out.profile = d.profile;
  out.data.resize(d.data.size() * sizeof(T));
  if (!d.data.empty()) {
    std::memcpy(out.data.data(), d.data.data(), out.data.size());
  }
}

}  // namespace

std::vector<DecompressedRaw> CompressorStream::decompressBatchRaw(
    std::span<const ConstByteSpan> streams) {
  std::vector<DecompressedRaw> out(streams.size());
  if (streams.empty()) return out;

  // Per-stream write-digest verification cannot isolate one member of a
  // fused launch, so fault-injection configurations keep the serial
  // detect-and-retry semantics of decompress(). Version-3 streams decode
  // through their own pipeline-aware pass (host-side block positioning,
  // shared dictionary), which likewise runs one launch per stream.
  bool anyV3 = false;
  for (const ConstByteSpan s : streams) {
    if (StreamHeader::parse(s).version >= kFormatVersionV3) {
      anyV3 = true;
      break;
    }
  }
  if (config_.faultRetries > 0 || anyV3) {
    for (usize i = 0; i < streams.size(); ++i) {
      const StreamHeader header = StreamHeader::parse(streams[i]);
      if (header.precision == Precision::F32) {
        decompressSerialRaw<f32>(*this, streams[i], out[i]);
      } else {
        decompressSerialRaw<f64>(*this, streams[i], out[i]);
      }
    }
    return out;
  }

  arena_.reset();
  applyInjectedArenaBudget();

  std::vector<DecodeJob> jobs(streams.size());
  for (usize i = 0; i < streams.size(); ++i) {
    DecodeJob& job = jobs[i];
    const ConstByteSpan stream = streams[i];
    job.header = StreamHeader::parse(stream);

    if (job.header.checksum != 0) {
      u32 crc = crc32(ConstByteSpan(
          stream.data() + StreamHeader::offsetsBegin(),
          stream.size() - StreamHeader::offsetsBegin()));
      if (crc == 0) crc = 1;
      require(crc == job.header.checksum,
              "decompressBatch: checksum mismatch — the stream is "
              "corrupted");
      job.checksumSeconds += static_cast<f64>(stream.size()) /
                                 (timing_.spec().memBandwidthGBps * 1e9) +
                             timing_.launchSeconds();
    }
    validateStrictLayout("decompressBatch", job.header, stream, 0,
                         job.header.numBlocks());
    if (job.header.hasBlockChecksums()) {
      job.checksumSeconds += static_cast<f64>(stream.size()) /
                                 (timing_.spec().memBandwidthGBps * 1e9) +
                             timing_.launchSeconds();
    }

    const u64 n = job.header.numElements;
    const usize elemBytes =
        job.header.precision == Precision::F32 ? sizeof(f32) : sizeof(f64);
    out[i].precision = job.header.precision;
    out[i].elements = n;
    out[i].data.assign(n * elemBytes, std::byte{});
    if (n == 0) {
      job.desc.gridSize = 0;
      out[i].profile.endToEndSeconds = timing_.launchSeconds();
      continue;
    }

    const u64 numBlocks = job.header.numBlocks();
    job.tiles = static_cast<u32>(std::max<u64>(
        1, (numBlocks + config_.blocksPerTile - 1) / config_.blocksPerTile));
    job.offsetBytes = stream.data() + StreamHeader::offsetsBegin();
    job.payload = stream.data() + job.header.payloadBegin();
    job.payloadAvail =
        stream.size() - job.header.payloadBegin() - job.header.footerBytes();
    job.sync.emplace(config_.syncAlgorithm, job.tiles, arena_);
    if (job.header.precision == Precision::F32) {
      buildDecodeKernel<f32>(config_, timing_, job, out[i].data.data());
    } else {
      buildDecodeKernel<f64>(config_, timing_, job, out[i].data.data());
    }
  }

  std::vector<gpusim::KernelDesc> descs;
  descs.reserve(jobs.size());
  for (DecodeJob& job : jobs) descs.push_back(std::move(job.desc));
  auto launches = launcher_.launchBatch(descs);

  for (usize i = 0; i < jobs.size(); ++i) {
    if (descs[i].gridSize == 0) {
      noteDecompressed(streams[i].size(), 0, 0.0);
      continue;
    }
    out[i].profile = makeProfile(launches[i], timing_,
                                 jobs[i].header.originalBytes(),
                                 jobs[i].checksumSeconds);
    noteDecompressed(streams[i].size(), out[i].data.size(),
                     out[i].profile.endToEndGBps);
  }
  return out;
}

template <FloatingPoint T>
BlockRange<T> CompressorStream::decompressBlocks(ConstByteSpan stream,
                                                 u64 firstBlock,
                                                 u64 blockCount) {
  arena_.reset();
  applyInjectedArenaBudget();
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "decompressBlocks: stream precision mismatch");
  const u64 numBlocks = header.numBlocks();
  require(firstBlock < numBlocks && blockCount > 0 &&
              firstBlock + blockCount <= numBlocks,
          "decompressBlocks: block range out of bounds");
  if (header.version >= kFormatVersionV3) {
    return decompressBlocksV3<T>(stream, header, firstBlock, blockCount);
  }

  // The whole prefix-summed layout is validated before any payload read
  // (a corrupt offset byte anywhere shifts every later block); version-2
  // digests are checked for the requested blocks only.
  validateStrictLayout("decompressBlocks", header, stream, firstBlock,
                       blockCount);

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));

  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail =
      stream.size() - header.payloadBegin() - header.footerBytes();

  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  const PayloadSizeTable psize(L);
  TileSync syncState(config_.syncAlgorithm, tiles, arena_);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  BlockRange<T> out;
  out.firstElement = firstBlock * L;
  const u64 lastElement = std::min<u64>(n, (firstBlock + blockCount) * L);
  out.values.assign(lastElement - out.firstElement, T{});

  // The offset array alone is scanned (1 byte per block) to locate the
  // range; only the requested blocks run the decode path. This is why
  // random access reaches TB-level throughput relative to the original
  // data size (paper Fig. 20).
  const std::function<void(gpusim::BlockCtx&)> body =
      [&](gpusim::BlockCtx& ctx) {
    const u64 tFirst = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 tLast = std::min(numBlocks, tFirst + bpt);

    u64 aggregate = 0;
    for (u64 blk = tFirst; blk < tLast; ++blk) {
      aggregate += psize[offsetBytes[blk]];
    }
    access.read(ctx.mem, tLast - tFirst, 1);
    ctx.mem.noteOps((tLast - tFirst) * 2);

    const u64 base =
        syncState.processTile(ctx.blockIdx, aggregate, ctx.sync, ctx.mem);

    if (tLast <= firstBlock || tFirst >= firstBlock + blockCount) return;

    u64 cursor = base;
    i32 quantsArr[256];
    for (u64 blk = tFirst; blk < tLast; ++blk) {
      const auto h = BlockHeader::unpack(
          std::to_integer<u8>(offsetBytes[blk]));
      const usize size = psize[offsetBytes[blk]];
      if (blk >= firstBlock && blk < firstBlock + blockCount) {
        require(cursor + size <= payloadAvail,
                "decompressBlocks: truncated payload region");
        std::span<i32> q(quantsArr, L);
        codec.decodeResiduals(h, payload + cursor, q);
        residualsToQuants(q, q, header.predictor);
        const u64 eFirst = blk * L;
        const u64 eLast = std::min<u64>(n, eFirst + L);
        dequantizeSpan(quantizer,
                       std::span<const i32>(quantsArr, eLast - eFirst),
                       out.values.data() + (eFirst - out.firstElement));
        access.read(ctx.mem, size, 4);
        access.write(ctx.mem, (eLast - eFirst) * sizeof(T), sizeof(T));
        ctx.mem.noteOps((eLast - eFirst) * 6);
      }
      cursor += size;
    }
  };
  const auto launch =
      launcher_.launch(tiles, body, 0, {}, "random_access_decode");

  out.profile = makeProfile(launch, timing_, header.originalBytes());
  noteDecompressed(stream.size(), out.values.size() * sizeof(T),
                   out.profile.endToEndGBps);
  return out;
}

template <FloatingPoint T>
Compressed CompressorStream::replaceBlocks(ConstByteSpan stream,
                                           u64 firstBlock,
                                           std::span<const T> values) {
  arena_.reset();
  applyInjectedArenaBudget();
  const StreamHeader header = StreamHeader::parse(stream);
  require(header.precision == precisionOf<T>(),
          "replaceBlocks: stream precision mismatch");
  require(!values.empty(), "replaceBlocks: values must be non-empty");
  if (header.version >= kFormatVersionV3) {
    return replaceBlocksV3<T>(stream, header, firstBlock, values);
  }

  const u32 L = header.blockSize;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();
  const u64 blockCount = (values.size() + L - 1) / L;
  require(firstBlock < numBlocks && firstBlock + blockCount <= numBlocks,
          "replaceBlocks: block range out of bounds");
  const u64 eFirst = firstBlock * L;
  const u64 eLast = std::min<u64>(n, (firstBlock + blockCount) * L);
  require(values.size() == eLast - eFirst,
          "replaceBlocks: values must cover whole blocks (size must be "
          "a multiple of the block size or end at the stream tail)");

  // Validates the whole layout (prefix-sum bounds + every version-2
  // digest) before the splice reads any payload byte.
  validateStrictLayout("replaceBlocks", header, stream, 0, numBlocks);

  const std::byte* offsetBytes = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail =
      stream.size() - header.payloadBegin() - header.footerBytes();

  // Locate the byte range of the replaced blocks and the payload total
  // (host-side scan; on the device this is the same offset-array pass the
  // random-access read performs).
  u64 rangeStart = 0;
  u64 rangeEnd = 0;
  u64 totalPayload = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    const usize size = payloadSize(
        BlockHeader::unpack(std::to_integer<u8>(offsetBytes[blk])), L);
    if (blk == firstBlock) rangeStart = totalPayload;
    totalPayload += size;
    if (blk == firstBlock + blockCount - 1) rangeEnd = totalPayload;
  }
  require(totalPayload <= payloadAvail, "replaceBlocks: truncated payload");

  // Re-encode the replacement blocks under the stream's bound and mode
  // (one small kernel).
  const Quantizer quantizer(header.absErrorBound, config_.roundingMode);
  const BlockCodec codec(L);
  const std::span<std::byte> newOffsets =
      arena_.allocSpan<std::byte>(blockCount);
  const std::span<std::byte> newPayload =
      arena_.allocSpan<std::byte>(blockCount * maxPayloadSize(L));
  const std::span<u64> newSizes = arena_.allocSpan<u64>(blockCount);
  const std::span<i32> blockScratch = arena_.allocSpan<i32>(L);
  const std::function<void(gpusim::BlockCtx&)> reencodeBody =
      [&](gpusim::BlockCtx& ctx) {
    std::span<i32> q = blockScratch;
    u64 cursor = 0;
    for (u64 b = 0; b < blockCount; ++b) {
      const u64 vFirst = b * L;
      const u64 vLast = std::min<u64>(values.size(), vFirst + L);
      quantizeDiffBlock(quantizer, values.subspan(vFirst, vLast - vFirst),
                        q);
      if (header.predictor == Predictor::SecondOrder) secondOrderDiff(q);
      const auto plan = codec.planResiduals(q, header.mode);
      newOffsets[b] = static_cast<std::byte>(plan.header.pack());
      codec.encodeResiduals(q, plan, newPayload.data() + cursor);
      newSizes[b] = plan.payloadBytes;
      cursor += plan.payloadBytes;
    }
    ctx.mem.noteVectorRead(values.size() * sizeof(T), 32);
    ctx.mem.noteScalarRead(numBlocks, 1, 32);  // offset-array scan
    ctx.mem.noteVectorWrite(cursor + blockCount, 32);
    ctx.mem.noteOps(values.size() * 16);
  };
  const auto launch =
      launcher_.launch(1, reencodeBody, 0, {}, "replace_blocks");
  u64 newRangeBytes = 0;
  for (const u64 s : newSizes) newRangeBytes += s;

  // Splice: header | offsets (patched) | payload prefix | new | suffix.
  Compressed out;
  out.originalBytes = header.originalBytes();
  out.stream.reserve(header.payloadBegin() + totalPayload - (rangeEnd -
                     rangeStart) + newRangeBytes);
  out.stream.insert(out.stream.end(), stream.begin(),
                    stream.begin() + static_cast<usize>(
                        StreamHeader::offsetsBegin()));
  out.stream.insert(out.stream.end(), offsetBytes,
                    offsetBytes + firstBlock);
  out.stream.insert(out.stream.end(), newOffsets.begin(), newOffsets.end());
  out.stream.insert(out.stream.end(), offsetBytes + firstBlock + blockCount,
                    offsetBytes + numBlocks);
  out.stream.insert(out.stream.end(), payload, payload + rangeStart);
  out.stream.insert(out.stream.end(), newPayload.begin(),
                    newPayload.begin() + newRangeBytes);
  out.stream.insert(out.stream.end(), payload + rangeEnd,
                    payload + totalPayload);

  // Version 2: rebuild the per-block CRC footer over the spliced stream
  // (the replaced blocks' digests changed; the rest are recomputed too so
  // the footer stays a pure function of the stream's blocks).
  if (header.hasBlockChecksums()) {
    std::vector<std::byte> footer(header.footerBytes());
    const std::byte* outOffsets =
        out.stream.data() + StreamHeader::offsetsBegin();
    const std::byte* outPayload = out.stream.data() + header.payloadBegin();
    u64 cursor = 0;
    for (u64 blk = 0; blk < numBlocks; ++blk) {
      const usize size = payloadSize(
          BlockHeader::unpack(std::to_integer<u8>(outOffsets[blk])), L);
      const u16 digest = blockDigest(
          outOffsets[blk], ConstByteSpan(outPayload + cursor, size));
      footer[2 * blk] = static_cast<std::byte>(digest & 0xFFu);
      footer[2 * blk + 1] = static_cast<std::byte>(digest >> 8);
      cursor += size;
    }
    out.stream.insert(out.stream.end(), footer.begin(), footer.end());
  }

  // Keep the integrity stamp valid after the splice.
  if (header.checksum != 0) {
    StreamHeader patched = header;
    patched.checksum = crc32(ConstByteSpan(
        out.stream.data() + StreamHeader::offsetsBegin(),
        out.stream.size() - StreamHeader::offsetsBegin()));
    if (patched.checksum == 0) patched.checksum = 1;
    patched.serialize(out.stream.data());
  }

  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing_, (eLast - eFirst) * sizeof(T));
  instruments_.replaceBlocksCalls->add(1);
  instruments_.arenaHighWater->set(
      static_cast<f64>(arena_.stats().highWater));
  return out;
}

template <FloatingPoint T>
Salvaged<T> CompressorStream::decompressResilient(ConstByteSpan stream,
                                                  T fillValue) {
  arena_.reset();
  // Salvage keeps its never-throws contract: clear (don't take) any
  // injected arena budget.
  arena_.clearFailureBudget();
  Salvaged<T> out;
  DecodeReport& rep = out.report;
  out.profile.endToEndSeconds = timing_.launchSeconds();

  instruments_.salvageCalls->add(1);
  std::string headerError;
  const auto parsed = StreamHeader::tryParse(stream, &headerError);
  if (!parsed) {
    // Unparseable header: no block or byte counts are trustworthy, so
    // nothing beyond the call counter reaches the registry.
    rep.headerError = headerError;
    return out;
  }
  const StreamHeader header = *parsed;
  if (header.precision != precisionOf<T>()) {
    rep.headerError =
        "decompressResilient: stream precision does not match the "
        "requested type";
    return out;
  }
  rep.headerOk = true;
  rep.blockChecksums = header.hasBlockChecksums();
  if (header.version >= kFormatVersionV3) {
    salvageV3<T>(stream, header, fillValue, out);
    instruments_.salvageBadBlocks->add(rep.badBlocks);
    return out;
  }

  // Whole-stream CRC verdict is informational in salvage mode: a
  // mismatch localizes nothing, the per-block pass below decides.
  f64 checksumSeconds = 0.0;
  if (header.checksum != 0) {
    u32 crc = crc32(ConstByteSpan(
        stream.data() + StreamHeader::offsetsBegin(),
        stream.size() - StreamHeader::offsetsBegin()));
    if (crc == 0) crc = 1;
    rep.streamChecksumOk = (crc == header.checksum);
    checksumSeconds = static_cast<f64>(stream.size()) /
                          (timing_.spec().memBandwidthGBps * 1e9) +
                      timing_.launchSeconds();
  }

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();
  rep.totalBlocks = numBlocks;
  rep.verdicts.assign(numBlocks, BlockVerdict::Good);
  out.data.assign(n, fillValue);
  if (n == 0) return out;

  const usize payloadBegin = header.payloadBegin();
  const usize footerB = header.footerBytes();
  const usize payloadAvail = stream.size() - payloadBegin - footerB;
  const std::byte* offsets = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + payloadBegin;
  const std::byte* footer = stream.data() + (stream.size() - footerB);

  // Host structural pass: prefix-sum every block's payload position from
  // the offset bytes, bounds-check each against the payload region, and
  // (version 2) verify each in-range block's digest. A truncated stream
  // quarantines every block past the cut; a flipped offset byte shifts all
  // later positions, so their digests fail too — exactly the blocks whose
  // bytes can no longer be trusted.
  const std::span<u64> blockStart = arena_.allocSpan<u64>(numBlocks);
  const PayloadSizeTable psize(L);
  u64 cursor = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    blockStart[blk] = cursor;
    const usize size = psize[offsets[blk]];
    if (cursor > payloadAvail || size > payloadAvail - cursor) {
      rep.verdicts[blk] = BlockVerdict::Truncated;
    } else if (header.hasBlockChecksums()) {
      const u16 stored =
          static_cast<u16>(std::to_integer<u16>(footer[2 * blk]) |
                           (std::to_integer<u16>(footer[2 * blk + 1]) << 8));
      const u16 actual =
          blockDigest(offsets[blk], ConstByteSpan(payload + cursor, size));
      if (stored != actual) {
        rep.verdicts[blk] = BlockVerdict::ChecksumMismatch;
      }
    }
    cursor += size;
  }
  if (header.hasBlockChecksums() &&
      payloadBegin + cursor + footerB != stream.size()) {
    rep.framingDamaged = true;
  }

  const u32 tiles = static_cast<u32>(
      std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  // Decode only the surviving blocks; quarantined blocks keep the fill.
  // Block positions come from the host pass, so no scan state is needed
  // (and corrupted offsets cannot wedge the inter-tile protocol).
  const std::function<void(gpusim::BlockCtx&)> salvageBody =
      [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    i32 quantsArr[256];
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    u64 zeroBytes = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      if (rep.verdicts[blk] != BlockVerdict::Good) continue;
      const auto h = BlockHeader::unpack(std::to_integer<u8>(offsets[blk]));
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      if (!h.outlierMode && h.fixedLength == 0) {
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = T{};
        zeroBytes += (eLast - eFirst) * sizeof(T);
        continue;
      }
      try {
        std::span<i32> q(quantsArr, L);
        codec.decodeResiduals(h, payload + blockStart[blk], q);
        residualsToQuants(q, q, header.predictor);
        dequantizeSpan(quantizer,
                       std::span<const i32>(quantsArr, eLast - eFirst),
                       out.data.data() + eFirst);
        decodedElems += eLast - eFirst;
        payloadBytesRead += payloadSize(h, L);
      } catch (const Error&) {
        rep.verdicts[blk] = BlockVerdict::DecodeError;
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = fillValue;
      }
    }
    access.read(ctx.mem, lastBlock - firstBlock, 1);
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteMemset(zeroBytes);
    ctx.mem.noteOps(decodedElems * 6);
    ctx.mem.noteL1(decodedElems * 8);
  };
  const auto launch =
      launcher_.launch(tiles, salvageBody, 0, {}, "salvage_decode");

  for (u64 blk = 0; blk < numBlocks; ++blk) {
    if (rep.verdicts[blk] == BlockVerdict::Good) continue;
    ++rep.badBlocks;
    if (rep.firstCorruptOffset == DecodeReport::kNoCorruption) {
      rep.firstCorruptOffset = payloadBegin + blockStart[blk];
    }
  }
  rep.goodBlocks = numBlocks - rep.badBlocks;
  instruments_.salvageBadBlocks->add(rep.badBlocks);

  out.profile =
      makeProfile(launch, timing_, header.originalBytes(), checksumSeconds);
  return out;
}

// Explicit instantiations of the public surface.
template Compressed CompressorStream::compress<f32>(std::span<const f32>);
template Compressed CompressorStream::compress<f64>(std::span<const f64>);
template std::vector<Compressed> CompressorStream::compressBatch<f32>(
    std::span<const std::span<const f32>>);
template std::vector<Compressed> CompressorStream::compressBatch<f64>(
    std::span<const std::span<const f64>>);
template Decompressed<f32> CompressorStream::decompress<f32>(ConstByteSpan);
template Decompressed<f64> CompressorStream::decompress<f64>(ConstByteSpan);
template BlockRange<f32> CompressorStream::decompressBlocks<f32>(
    ConstByteSpan, u64, u64);
template BlockRange<f64> CompressorStream::decompressBlocks<f64>(
    ConstByteSpan, u64, u64);
template Compressed CompressorStream::replaceBlocks<f32>(
    ConstByteSpan, u64, std::span<const f32>);
template Compressed CompressorStream::replaceBlocks<f64>(
    ConstByteSpan, u64, std::span<const f64>);
template Salvaged<f32> CompressorStream::decompressResilient<f32>(
    ConstByteSpan, f32);
template Salvaged<f64> CompressorStream::decompressResilient<f64>(
    ConstByteSpan, f64);

}  // namespace cuszp2::core
