// Format-v3 pipeline paths of CompressorStream (see core/pipeline.hpp and
// docs/FORMAT.md for the wire layout).
//
// Compression is a two-kernel pass with a host selection stage between
// them, replacing the legacy single kernel + decoupled-lookback scan:
//
//   "v3_analyze"  quantize + delta-1 per block, store residuals/symbols,
//                 gather per-block candidate sizes for every pipeline
//   (host)        whole-stream symbol histogram -> shared Huffman table,
//                 per-block Huffman sizes, selectPipelines(), prefix sum
//                 of the chosen sizes into exact payload positions
//   "v3_encode"   encode each block with its selected pipeline at its
//                 precomputed offset, write the 1-byte descriptors
//
// Because block positions are prefix-summed on the host, neither kernel
// needs inter-tile synchronization, and decompression positions blocks
// from the descriptor array alone. Version-3 streams always carry the
// per-block CRC footer. The detect-and-retry machinery of the legacy path
// (Config::faultRetries) does not apply to the v3 kernels.
#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "core/block_codec.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "core/stream_internal.hpp"
#include "metrics/error_stats.hpp"

namespace cuszp2::core {

namespace {

using detail::AccessRecorder;
using detail::dequantizeSpan;
using detail::makeProfile;
using detail::residualsToQuants;

void put32(std::byte* p, u32 v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFu);
  }
}

u32 get32(const std::byte* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::to_integer<u32>(p[i]) << (8 * i);
  }
  return v;
}

void put16(std::byte* p, u16 v) {
  p[0] = static_cast<std::byte>(v & 0xFFu);
  p[1] = static_cast<std::byte>(v >> 8);
}

/// One device-bandwidth pass over `bytes` plus a launch, the same model
/// the legacy path charges for checksum/footer passes.
f64 bandwidthPassSeconds(const gpusim::TimingModel& timing, u64 bytes) {
  return static_cast<f64>(bytes) / (timing.spec().memBandwidthGBps * 1e9) +
         timing.launchSeconds();
}

u16 footerDigestAt(const std::byte* footer, u64 blk) {
  return static_cast<u16>(std::to_integer<u16>(footer[2 * blk]) |
                          (std::to_integer<u16>(footer[2 * blk + 1]) << 8));
}

/// Strict validation of a v3 stream's block layout before any payload
/// decode: every descriptor must name a known pipeline, the prefix-summed
/// payload positions must stay inside the payload region and land exactly
/// on the footer, and the per-block digests covering [digestFirst,
/// digestFirst + digestCount) must match. Fills `blockStart` (exclusive
/// prefix positions) when non-empty and returns the total payload size.
u64 validateV3Layout(const char* api, const StreamHeader& header,
                     ConstByteSpan stream, u64 digestFirst, u64 digestCount,
                     std::span<u64> blockStart = {}) {
  const u64 numBlocks = header.numBlocks();
  const usize payloadBegin = header.payloadBegin();
  const usize footerB = header.footerBytes();
  const usize payloadAvail = stream.size() - payloadBegin - footerB;
  const std::byte* descs = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + payloadBegin;
  const std::byte* footer = stream.data() + (stream.size() - footerB);
  const PayloadSizeTable psize(header.blockSize);

  u64 cursor = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    if (!blockStart.empty()) blockStart[blk] = cursor;
    const std::byte* descBytes = descs + blk * kV3DescBytes;
    const V3BlockDesc desc = V3BlockDesc::unpack(descBytes);
    if (!desc.knownPipeline()) {
      throw Error(std::string(api) + ": unknown pipeline id " +
                  std::to_string(static_cast<u32>(desc.pipeline)) +
                  " at block " + std::to_string(blk) +
                  " — the descriptor array is corrupt");
    }
    const usize size =
        desc.payloadBytes(psize, payload + cursor, payloadAvail - cursor);
    if (cursor + size > payloadAvail) {
      throw Error(std::string(api) +
                  ": descriptors imply a payload overrun at block " +
                  std::to_string(blk) + " (stream byte offset " +
                  std::to_string(payloadBegin + cursor) + ", needs " +
                  std::to_string(size) + " bytes) — the stream is corrupt "
                  "or truncated");
    }
    if (blk >= digestFirst && blk < digestFirst + digestCount) {
      const u16 actual =
          blockDigestV3(ConstByteSpan(descBytes, kV3DescBytes),
                        ConstByteSpan(payload + cursor, size));
      if (footerDigestAt(footer, blk) != actual) {
        throw Error(std::string(api) +
                    ": per-block checksum mismatch at block " +
                    std::to_string(blk) + " (stream byte offset " +
                    std::to_string(payloadBegin + cursor) +
                    ") — the stream is corrupted");
      }
    }
    cursor += size;
  }
  if (payloadBegin + cursor + footerB != stream.size()) {
    throw Error(std::string(api) +
                ": version-3 stream framing mismatch (descriptors imply " +
                std::to_string(payloadBegin + cursor + footerB) +
                " bytes, stream has " + std::to_string(stream.size()) +
                ") — the stream is corrupted or truncated");
  }
  return cursor;
}

/// Strict parse of the v3 dictionary section: [u32 tableBytes][u32 CRC-32]
/// [serialized table]. Returns an empty table for a stream that ships no
/// Huffman blocks (tableBytes == 0).
HuffTable parseDictV3(const char* api, const StreamHeader& header,
                      ConstByteSpan stream) {
  if (header.numBlocks() == 0) return {};
  const std::byte* dict = stream.data() + header.dictBegin();
  const u32 tableBytes = get32(dict);
  require(8 + static_cast<usize>(tableBytes) == header.dictBytes,
          std::string(api) + ": dictionary section size mismatch — the "
          "stream is corrupted");
  const u32 storedCrc = get32(dict + 4);
  const ConstByteSpan tableSpan(dict + 8, tableBytes);
  require(crc32(tableSpan) == storedCrc,
          std::string(api) + ": dictionary checksum mismatch — the shared "
          "Huffman table is corrupted");
  if (tableBytes == 0) return {};
  return HuffTable::parse(tableSpan);
}

/// Decodes one v3 block's payload into quantization integers (full padded
/// block length). Throws cuszp2::Error on malformed payloads.
void decodeBlockV3(const V3BlockDesc& desc, ConstByteSpan payload,
                   const BlockCodec& codec, const HuffDecoder* decoder,
                   std::span<i32> quants) {
  const usize L = quants.size();
  i32 resArr[256];
  std::span<i32> res(resArr, L);
  switch (desc.pipeline) {
    case PipelineId::Fle:
    case PipelineId::LorenzoFle: {
      const auto h = BlockHeader::unpack(desc.offsetByte);
      if (!h.outlierMode && h.fixedLength == 0) {
        // Zero block under either predictor: all residuals are zero, so
        // the reconstruction is zero regardless of the prediction stage.
        std::fill(quants.begin(), quants.end(), 0);
        return;
      }
      codec.decodeResiduals(h, payload.data(), res);
      if (desc.pipeline == PipelineId::LorenzoFle) {
        lorenzo2dReconstruct(res, quants);
      } else {
        residualsToQuants(res, quants, Predictor::FirstOrder);
      }
      return;
    }
    case PipelineId::Huffman: {
      require(decoder != nullptr,
              "v3 decode: stream uses the Huffman pipeline but carries no "
              "dictionary");
      decodeHuffmanBlock(payload.subspan(kV3EntropyPrefixBytes), *decoder,
                         res);
      residualsToQuants(res, quants, Predictor::FirstOrder);
      return;
    }
    default: {  // Rle
      decodeRleBlock(payload.subspan(kV3EntropyPrefixBytes), res);
      residualsToQuants(res, quants, Predictor::FirstOrder);
      return;
    }
  }
}

}  // namespace

template <FloatingPoint T>
Compressed CompressorStream::compressV3(std::span<const T> data) {
  arena_.reset();
  applyInjectedArenaBudget();

  const u32 L = config_.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = data.size();
  const EncodingMode mode = config_.mode;

  f64 extraSeconds = 0.0;
  f64 absEb = config_.absErrorBound;
  if (absEb <= 0.0) {
    const f64 range = metrics::valueRange(data);
    absEb = Quantizer::absFromRel(config_.relErrorBound, range);
    extraSeconds += bandwidthPassSeconds(timing_, n * sizeof(T));
  }
  const Quantizer quantizer(absEb, config_.roundingMode);

  StreamHeader header;
  header.version = kFormatVersionV3;
  header.precision = precisionOf<T>();
  header.mode = mode;
  header.predictor = config_.predictor;  // FirstOrder (Config::validate)
  header.blockSize = L;
  header.numElements = n;
  header.absErrorBound = absEb;

  Compressed out;
  out.originalBytes = n * sizeof(T);
  if (n == 0) {
    out.stream.assign(StreamHeader::kBytes, std::byte{});
    header.serialize(out.stream.data());
    out.ratio = 0.0;
    out.profile.endToEndSeconds = timing_.launchSeconds();
    noteCompressed(out);
    return out;
  }

  const u64 numBlocks = header.numBlocks();
  const u32 tiles =
      static_cast<u32>(std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const BlockCodec codec(L);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};

  // Whole-stream residual/symbol scratch (blocks are padded to L, matching
  // the legacy layout, so spans index by blk * L).
  const std::span<i32> residuals = arena_.allocSpan<i32>(numBlocks * L);
  const std::span<u16> symbols = arena_.allocSpan<u16>(numBlocks * L);
  const std::span<BlockCandidates> candidates =
      arena_.allocSpan<BlockCandidates>(numBlocks);

  // Phase 1 — quantize + delta-1 per block, map symbols, and gather the
  // candidate sizes the host selector needs. Same per-element analysis
  // cost as the legacy pass 1, plus the RLE/Lorenzo candidate walks.
  gpusim::KernelDesc analyze;
  analyze.gridSize = tiles;
  analyze.name = "v3_analyze";
  analyze.body = [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    i32 quantsArr[256];
    i32 lorenzoArr[256];
    u64 elemsRead = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      const std::span<i32> r(residuals.data() + blk * L, L);
      quantizeDiffBlock(quantizer,
                        std::span<const T>(data.data() + eFirst,
                                           eLast - eFirst),
                        r);
      const std::span<u16> sym(symbols.data() + blk * L, L);
      for (u32 i = 0; i < L; ++i) sym[i] = symbolOf(r[i]);

      BlockCandidates cand;
      cand.bytes[static_cast<u8>(PipelineId::Fle)] =
          codec.planResiduals(r, mode).payloadBytes;
      // Entropy candidates are charged their u16 size prefix so selection
      // compares true payload costs.
      const usize rleBytes = rleBlockBytes(sym);
      cand.bytes[static_cast<u8>(PipelineId::Rle)] =
          rleBytes <= 0xFFFF ? rleBytes + kV3EntropyPrefixBytes
                             : kInvalidSize;
      {
        const std::span<i32> q(quantsArr, L);
        residualsToQuants(r, q, Predictor::FirstOrder);
        const std::span<i32> lres(lorenzoArr, L);
        if (lorenzo2dResiduals(q, lres)) {
          // Lorenzo blocks are always Plain-FLE: the 1-byte descriptor
          // only has 5 bits for the fixed length.
          cand.bytes[static_cast<u8>(PipelineId::LorenzoFle)] =
              codec.planResiduals(lres, EncodingMode::Plain).payloadBytes;
        }
      }
      candidates[blk] = cand;
      elemsRead += eLast - eFirst;
    }
    access.read(ctx.mem, elemsRead * sizeof(T), sizeof(T));
    access.write(ctx.mem, (lastBlock - firstBlock) * L * 6, 4);
    ctx.mem.noteOps((lastBlock - firstBlock) * L * 20);
    ctx.mem.noteL1((lastBlock - firstBlock) * L * 12);
  };
  const auto analyzeLaunch = launcher_.launch(
      analyze.gridSize, analyze.body, analyze.blocksPerTask, {}, analyze.name);

  // Host stage — shared Huffman table from the whole-stream histogram,
  // per-block Huffman candidate sizes, pipeline selection, prefix sum.
  HuffTable table;
  usize tableBytes = 0;
  if (config_.pipeline == PipelineMode::Auto ||
      config_.pipeline == PipelineMode::Huffman) {
    std::vector<u64> freq(kSymbolAlphabet, 0);
    for (const u16 s : symbols) ++freq[s];
    table = HuffTable::fromFrequencies(freq);
    tableBytes = table.serializedBytes();
    for (u64 blk = 0; blk < numBlocks; ++blk) {
      const usize bytes = huffmanBlockBytes(
          std::span<const u16>(symbols.data() + blk * L, L), table);
      candidates[blk].bytes[static_cast<u8>(PipelineId::Huffman)] =
          bytes <= 0xFFFF ? bytes + kV3EntropyPrefixBytes : kInvalidSize;
    }
  }

  const SelectionResult sel =
      selectPipelines(candidates, config_.pipeline, tableBytes);
  header.dictBytes =
      static_cast<u32>(8 + (sel.usesHuffman ? tableBytes : 0));

  const std::span<u64> blockStart = arena_.allocSpan<u64>(numBlocks);
  u64 cursor = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    blockStart[blk] = cursor;
    cursor += candidates[blk].bytes[static_cast<u8>(sel.choice[blk])];
  }
  require(cursor == sel.totalPayload,
          "compressV3: selection/prefix-sum size mismatch");

  const usize payloadBegin = header.payloadBegin();
  const usize finalBytes = payloadBegin + static_cast<usize>(cursor) +
                           header.footerBytes();
  std::byte* staging = static_cast<std::byte*>(arena_.allocate(finalBytes));
  header.serialize(staging);
  std::byte* descs = staging + StreamHeader::offsetsBegin();
  std::byte* dict = staging + header.dictBegin();
  std::byte* payload = staging + payloadBegin;

  put32(dict, static_cast<u32>(header.dictBytes - 8));
  const ConstByteSpan tableSpan(dict + 8, header.dictBytes - 8);
  if (sel.usesHuffman) table.serialize(dict + 8);
  put32(dict + 4, crc32(tableSpan));

  // Phase 2 — encode every block with its selected pipeline at its exact
  // precomputed offset and write the 1-byte descriptors. No inter-tile
  // synchronization: positions came from the host prefix sum.
  const std::span<const PipelineId> choice = sel.choice;
  gpusim::KernelDesc encode;
  encode.gridSize = tiles;
  encode.name = "v3_encode";
  encode.body = [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    i32 quantsArr[256];
    i32 lorenzoArr[256];
    u64 bytesWritten = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const std::span<const i32> r(residuals.data() + blk * L, L);
      std::byte* outp = payload + blockStart[blk];
      V3BlockDesc desc;
      desc.pipeline = choice[blk];
      usize written = 0;
      switch (choice[blk]) {
        case PipelineId::Fle: {
          const auto plan = codec.planResiduals(r, mode);
          desc.offsetByte = plan.header.pack();
          codec.encodeResiduals(r, plan, outp);
          written = plan.payloadBytes;
          break;
        }
        case PipelineId::LorenzoFle: {
          const std::span<i32> q(quantsArr, L);
          residualsToQuants(r, q, Predictor::FirstOrder);
          const std::span<i32> lres(lorenzoArr, L);
          lorenzo2dResiduals(q, lres);  // valid: the analysis pass checked
          const auto plan = codec.planResiduals(lres, EncodingMode::Plain);
          desc.offsetByte = plan.header.pack();
          codec.encodeResiduals(lres, plan, outp);
          written = plan.payloadBytes;
          break;
        }
        case PipelineId::Huffman: {
          const usize body = encodeHuffmanBlock(
              r, table, outp + kV3EntropyPrefixBytes);
          put16(outp, static_cast<u16>(body));
          written = kV3EntropyPrefixBytes + body;
          break;
        }
        default: {  // Rle
          const usize body = encodeRleBlock(r, outp + kV3EntropyPrefixBytes);
          put16(outp, static_cast<u16>(body));
          written = kV3EntropyPrefixBytes + body;
          break;
        }
      }
      require(written ==
                  candidates[blk].bytes[static_cast<u8>(choice[blk])],
              "compressV3: encoded size diverged from the analysis pass");
      desc.pack(descs + blk * kV3DescBytes);
      bytesWritten += written;
    }
    access.read(ctx.mem, (lastBlock - firstBlock) * L * 4, 4);
    access.write(ctx.mem, bytesWritten +
                              (lastBlock - firstBlock) * kV3DescBytes, 4);
    ctx.mem.noteOps(bytesWritten * 8);
    ctx.mem.noteL1((lastBlock - firstBlock) * L * 4);
  };
  const auto encodeLaunch = launcher_.launch(
      encode.gridSize, encode.body, encode.blocksPerTask, {}, encode.name);

  // Per-block CRC footer (always present in v3) — one bandwidth pass over
  // the compressed bytes, same model as the legacy v2 footer.
  std::byte* footer = payload + cursor;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    const usize size =
        candidates[blk].bytes[static_cast<u8>(sel.choice[blk])];
    const u16 digest = blockDigestV3(
        ConstByteSpan(descs + blk * kV3DescBytes, kV3DescBytes),
        ConstByteSpan(payload + blockStart[blk], size));
    footer[2 * blk] = static_cast<std::byte>(digest & 0xFFu);
    footer[2 * blk + 1] = static_cast<std::byte>(digest >> 8);
  }
  extraSeconds += bandwidthPassSeconds(timing_, finalBytes);

  if (config_.checksum) {
    header.checksum = crc32(ConstByteSpan(
        staging + StreamHeader::offsetsBegin(),
        finalBytes - StreamHeader::offsetsBegin()));
    if (header.checksum == 0) header.checksum = 1;  // 0 = "absent"
    header.serialize(staging);
    extraSeconds += bandwidthPassSeconds(timing_, finalBytes);
  }

  out.stream.assign(staging, staging + finalBytes);
  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  const f64 encodeSeconds =
      timing_.kernel(encodeLaunch.mem, encodeLaunch.sync).totalSeconds;
  out.profile = makeProfile(analyzeLaunch, timing_, out.originalBytes,
                            extraSeconds + encodeSeconds);
  out.profile.wallSeconds += encodeLaunch.wallSeconds;
  noteCompressed(out);
  return out;
}

template <FloatingPoint T>
Decompressed<T> CompressorStream::decompressV3(ConstByteSpan stream,
                                               const StreamHeader& header) {
  // Caller (decompress) has already reset the arena, applied any injected
  // budget, parsed the header and checked the precision tag.
  f64 checksumSeconds = 0.0;
  if (header.checksum != 0) {
    u32 crc = crc32(ConstByteSpan(
        stream.data() + StreamHeader::offsetsBegin(),
        stream.size() - StreamHeader::offsetsBegin()));
    if (crc == 0) crc = 1;
    require(crc == header.checksum,
            "decompress: checksum mismatch — the stream is corrupted");
    checksumSeconds += bandwidthPassSeconds(timing_, stream.size());
  }

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();

  Decompressed<T> out;
  out.data.assign(n, T{});
  if (n == 0) {
    out.profile.endToEndSeconds = timing_.launchSeconds();
    noteDecompressed(stream.size(), 0, 0.0);
    return out;
  }

  const std::span<u64> blockStart = arena_.allocSpan<u64>(numBlocks);
  validateV3Layout("decompress", header, stream, 0, numBlocks, blockStart);
  // Footer verification is one extra bandwidth pass over the compressed
  // bytes (v3 always carries the footer).
  checksumSeconds += bandwidthPassSeconds(timing_, stream.size());

  const HuffTable table = parseDictV3("decompress", header, stream);
  std::optional<HuffDecoder> decoder;
  if (!table.empty()) decoder.emplace(table);

  const std::byte* descs = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail =
      stream.size() - header.payloadBegin() - header.footerBytes();
  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  const PayloadSizeTable psize(L);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};
  const HuffDecoder* decoderPtr = decoder ? &*decoder : nullptr;

  const u32 tiles =
      static_cast<u32>(std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const std::function<void(gpusim::BlockCtx&)> body =
      [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    i32 quantsArr[256];
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    u64 zeroBytes = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      const V3BlockDesc desc =
          V3BlockDesc::unpack(descs + blk * kV3DescBytes);
      const usize size = desc.payloadBytes(
          psize, payload + blockStart[blk], payloadAvail - blockStart[blk]);
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      if (size == 0 && desc.pipeline != PipelineId::Huffman &&
          desc.pipeline != PipelineId::Rle) {
        // Zero block: flush with device memset (as in the legacy path).
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = T{};
        zeroBytes += (eLast - eFirst) * sizeof(T);
        continue;
      }
      const std::span<i32> q(quantsArr, L);
      decodeBlockV3(desc, ConstByteSpan(payload + blockStart[blk], size),
                    codec, decoderPtr, q);
      dequantizeSpan(quantizer,
                     std::span<const i32>(quantsArr, eLast - eFirst),
                     out.data.data() + eFirst);
      decodedElems += eLast - eFirst;
      payloadBytesRead += size;
    }
    access.read(ctx.mem, (lastBlock - firstBlock) * kV3DescBytes, 4);
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteMemset(zeroBytes);
    ctx.mem.noteOps(decodedElems * 8);
    ctx.mem.noteL1(decodedElems * 8);
  };
  const auto launch = launcher_.launch(tiles, body, 0, {}, "v3_decompress");

  out.profile =
      makeProfile(launch, timing_, header.originalBytes(), checksumSeconds);
  noteDecompressed(stream.size(), n * sizeof(T), out.profile.endToEndGBps);
  return out;
}

template <FloatingPoint T>
BlockRange<T> CompressorStream::decompressBlocksV3(ConstByteSpan stream,
                                                   const StreamHeader& header,
                                                   u64 firstBlock,
                                                   u64 blockCount) {
  // Caller validated precision and the block range.
  const u64 numBlocks = header.numBlocks();
  const std::span<u64> blockStart = arena_.allocSpan<u64>(numBlocks);
  validateV3Layout("decompressBlocks", header, stream, firstBlock,
                   blockCount, blockStart);
  const HuffTable table = parseDictV3("decompressBlocks", header, stream);
  std::optional<HuffDecoder> decoder;
  if (!table.empty()) decoder.emplace(table);

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const std::byte* descs = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const usize payloadAvail =
      stream.size() - header.payloadBegin() - header.footerBytes();
  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  const PayloadSizeTable psize(L);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};
  const HuffDecoder* decoderPtr = decoder ? &*decoder : nullptr;

  BlockRange<T> out;
  out.firstElement = firstBlock * L;
  const u64 lastElement = std::min<u64>(n, (firstBlock + blockCount) * L);
  out.values.assign(lastElement - out.firstElement, T{});

  // Positions come from the host descriptor walk, so only tiles covering
  // the requested range launch work; the descriptor array read replaces
  // the legacy offset-byte scan.
  const u32 tiles =
      static_cast<u32>(std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const std::function<void(gpusim::BlockCtx&)> body =
      [&](gpusim::BlockCtx& ctx) {
    const u64 tFirst = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 tLast = std::min(numBlocks, tFirst + bpt);
    access.read(ctx.mem, (tLast - tFirst) * kV3DescBytes, 4);
    ctx.mem.noteOps((tLast - tFirst) * 2);
    if (tLast <= firstBlock || tFirst >= firstBlock + blockCount) return;

    i32 quantsArr[256];
    for (u64 blk = std::max(tFirst, firstBlock);
         blk < std::min(tLast, firstBlock + blockCount); ++blk) {
      const V3BlockDesc desc =
          V3BlockDesc::unpack(descs + blk * kV3DescBytes);
      const usize size = desc.payloadBytes(
          psize, payload + blockStart[blk], payloadAvail - blockStart[blk]);
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      const std::span<i32> q(quantsArr, L);
      decodeBlockV3(desc, ConstByteSpan(payload + blockStart[blk], size),
                    codec, decoderPtr, q);
      dequantizeSpan(quantizer,
                     std::span<const i32>(quantsArr, eLast - eFirst),
                     out.values.data() + (eFirst - out.firstElement));
      access.read(ctx.mem, size, 4);
      access.write(ctx.mem, (eLast - eFirst) * sizeof(T), sizeof(T));
      ctx.mem.noteOps((eLast - eFirst) * 8);
    }
  };
  const auto launch =
      launcher_.launch(tiles, body, 0, {}, "random_access_decode");

  out.profile = makeProfile(launch, timing_, header.originalBytes());
  noteDecompressed(stream.size(), out.values.size() * sizeof(T),
                   out.profile.endToEndGBps);
  return out;
}

template <FloatingPoint T>
Compressed CompressorStream::replaceBlocksV3(ConstByteSpan stream,
                                             const StreamHeader& header,
                                             u64 firstBlock,
                                             std::span<const T> values) {
  const u32 L = header.blockSize;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();
  const u64 blockCount = (values.size() + L - 1) / L;
  require(firstBlock < numBlocks && firstBlock + blockCount <= numBlocks,
          "replaceBlocks: block range out of bounds");
  const u64 eFirst = firstBlock * L;
  const u64 eLast = std::min<u64>(n, (firstBlock + blockCount) * L);
  require(values.size() == eLast - eFirst,
          "replaceBlocks: values must cover whole blocks (size must be "
          "a multiple of the block size or end at the stream tail)");

  const std::span<u64> blockStart = arena_.allocSpan<u64>(numBlocks);
  const u64 totalPayload = validateV3Layout("replaceBlocks", header, stream,
                                            0, numBlocks, blockStart);
  parseDictV3("replaceBlocks", header, stream);  // integrity only

  const std::byte* descs = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + header.payloadBegin();
  const PayloadSizeTable psize(L);
  const u64 rangeStart = blockStart[firstBlock];
  const u64 lastReplaced = firstBlock + blockCount - 1;
  const u64 rangeEnd =
      blockStart[lastReplaced] +
      V3BlockDesc::unpack(descs + lastReplaced * kV3DescBytes)
          .payloadBytes(psize, payload + blockStart[lastReplaced],
                        totalPayload - blockStart[lastReplaced]);

  // Re-encode the replacement blocks with the FLE pipeline under the
  // stream's bound and mode. Spliced blocks do not consult the shared
  // dictionary, so the dictionary section passes through unchanged and
  // stays valid for every untouched Huffman block.
  const Quantizer quantizer(header.absErrorBound, config_.roundingMode);
  const BlockCodec codec(L);
  const std::span<std::byte> newDescs =
      arena_.allocSpan<std::byte>(blockCount * kV3DescBytes);
  const std::span<std::byte> newPayload =
      arena_.allocSpan<std::byte>(blockCount * maxPayloadSize(L));
  const std::span<u64> newSizes = arena_.allocSpan<u64>(blockCount);
  const std::span<i32> blockScratch = arena_.allocSpan<i32>(L);
  const std::function<void(gpusim::BlockCtx&)> reencodeBody =
      [&](gpusim::BlockCtx& ctx) {
    std::span<i32> q = blockScratch;
    u64 cursor = 0;
    for (u64 b = 0; b < blockCount; ++b) {
      const u64 vFirst = b * L;
      const u64 vLast = std::min<u64>(values.size(), vFirst + L);
      quantizeDiffBlock(quantizer, values.subspan(vFirst, vLast - vFirst),
                        q);
      const auto plan = codec.planResiduals(q, header.mode);
      V3BlockDesc desc;
      desc.pipeline = PipelineId::Fle;
      desc.offsetByte = plan.header.pack();
      desc.pack(newDescs.data() + b * kV3DescBytes);
      codec.encodeResiduals(q, plan, newPayload.data() + cursor);
      newSizes[b] = plan.payloadBytes;
      cursor += plan.payloadBytes;
    }
    ctx.mem.noteVectorRead(values.size() * sizeof(T), 32);
    ctx.mem.noteScalarRead(numBlocks * kV3DescBytes, 4, 32);
    ctx.mem.noteVectorWrite(cursor + blockCount * kV3DescBytes, 32);
    ctx.mem.noteOps(values.size() * 16);
  };
  const auto launch =
      launcher_.launch(1, reencodeBody, 0, {}, "replace_blocks");
  u64 newRangeBytes = 0;
  for (const u64 s : newSizes) newRangeBytes += s;

  // Splice: header | descriptors (patched) | dict | payload prefix | new
  // | suffix | footer (rebuilt) — the dictionary section is byte-copied.
  Compressed out;
  out.originalBytes = header.originalBytes();
  out.stream.reserve(header.payloadBegin() + totalPayload -
                     (rangeEnd - rangeStart) + newRangeBytes +
                     header.footerBytes());
  out.stream.insert(out.stream.end(), stream.begin(),
                    stream.begin() +
                        static_cast<usize>(StreamHeader::offsetsBegin()));
  out.stream.insert(out.stream.end(), descs,
                    descs + firstBlock * kV3DescBytes);
  out.stream.insert(out.stream.end(), newDescs.begin(), newDescs.end());
  out.stream.insert(out.stream.end(),
                    descs + (firstBlock + blockCount) * kV3DescBytes,
                    descs + numBlocks * kV3DescBytes);
  out.stream.insert(out.stream.end(),
                    stream.data() + header.dictBegin(),
                    stream.data() + header.dictBegin() + header.dictBytes);
  out.stream.insert(out.stream.end(), payload, payload + rangeStart);
  out.stream.insert(out.stream.end(), newPayload.begin(),
                    newPayload.begin() + newRangeBytes);
  out.stream.insert(out.stream.end(), payload + rangeEnd,
                    payload + totalPayload);

  // Rebuild the per-block CRC footer over the spliced stream (a pure
  // function of its descriptors and payloads).
  {
    std::vector<std::byte> footer(header.footerBytes());
    const std::byte* outDescs =
        out.stream.data() + StreamHeader::offsetsBegin();
    const std::byte* outPayload = out.stream.data() + header.payloadBegin();
    const u64 outPayloadBytes = out.stream.size() - header.payloadBegin();
    u64 cursor = 0;
    for (u64 blk = 0; blk < numBlocks; ++blk) {
      const usize size =
          V3BlockDesc::unpack(outDescs + blk * kV3DescBytes)
              .payloadBytes(psize, outPayload + cursor,
                            outPayloadBytes - cursor);
      const u16 digest = blockDigestV3(
          ConstByteSpan(outDescs + blk * kV3DescBytes, kV3DescBytes),
          ConstByteSpan(outPayload + cursor, size));
      footer[2 * blk] = static_cast<std::byte>(digest & 0xFFu);
      footer[2 * blk + 1] = static_cast<std::byte>(digest >> 8);
      cursor += size;
    }
    out.stream.insert(out.stream.end(), footer.begin(), footer.end());
  }

  if (header.checksum != 0) {
    StreamHeader patched = header;
    patched.checksum = crc32(ConstByteSpan(
        out.stream.data() + StreamHeader::offsetsBegin(),
        out.stream.size() - StreamHeader::offsetsBegin()));
    if (patched.checksum == 0) patched.checksum = 1;
    patched.serialize(out.stream.data());
  }

  out.ratio = static_cast<f64>(out.originalBytes) /
              static_cast<f64>(out.stream.size());
  out.profile = makeProfile(launch, timing_, (eLast - eFirst) * sizeof(T));
  instruments_.replaceBlocksCalls->add(1);
  instruments_.arenaHighWater->set(
      static_cast<f64>(arena_.stats().highWater));
  return out;
}

template <FloatingPoint T>
void CompressorStream::salvageV3(ConstByteSpan stream,
                                 const StreamHeader& header, T fillValue,
                                 Salvaged<T>& out) {
  // Caller (decompressResilient) has set headerOk and blockChecksums and
  // cleared the arena / failure budget; this fills the rest of the report,
  // the data, and the profile. Never throws on corrupt input.
  DecodeReport& rep = out.report;

  f64 checksumSeconds = 0.0;
  if (header.checksum != 0) {
    u32 crc = crc32(ConstByteSpan(
        stream.data() + StreamHeader::offsetsBegin(),
        stream.size() - StreamHeader::offsetsBegin()));
    if (crc == 0) crc = 1;
    rep.streamChecksumOk = (crc == header.checksum);
    checksumSeconds += bandwidthPassSeconds(timing_, stream.size());
  }

  const u32 L = header.blockSize;
  const u32 bpt = config_.blocksPerTile;
  const u64 n = header.numElements;
  const u64 numBlocks = header.numBlocks();
  rep.totalBlocks = numBlocks;
  rep.verdicts.assign(numBlocks, BlockVerdict::Good);
  out.data.assign(n, fillValue);
  if (n == 0) return;

  // Dictionary verdict: a damaged section header, CRC, or table quarantines
  // every Huffman block but leaves the table-free pipelines decodable.
  HuffTable table;
  try {
    table = parseDictV3("decompressResilient", header, stream);
  } catch (const Error&) {
    rep.dictionaryOk = false;
  }
  std::optional<HuffDecoder> decoder;
  if (rep.dictionaryOk && !table.empty()) decoder.emplace(table);

  const usize payloadBegin = header.payloadBegin();
  const usize footerB = header.footerBytes();
  const usize payloadAvail = stream.size() - payloadBegin - footerB;
  const std::byte* descs = stream.data() + StreamHeader::offsetsBegin();
  const std::byte* payload = stream.data() + payloadBegin;
  const std::byte* footer = stream.data() + (stream.size() - footerB);
  const PayloadSizeTable psize(L);

  // Host structural pass: position every block from the descriptor walk
  // (entropy blocks advance by their u16 payload size prefix; unknown
  // pipeline ids advance by zero and are quarantined), bounds-check, and
  // verify each in-range block's digest. A Huffman block is decodable only
  // with a good dictionary.
  const std::span<u64> blockStart = arena_.allocSpan<u64>(numBlocks);
  u64 cursor = 0;
  for (u64 blk = 0; blk < numBlocks; ++blk) {
    blockStart[blk] = cursor;
    const std::byte* descBytes = descs + blk * kV3DescBytes;
    const V3BlockDesc desc = V3BlockDesc::unpack(descBytes);
    const usize remaining =
        cursor <= payloadAvail ? payloadAvail - cursor : 0;
    const usize size = desc.payloadBytes(
        psize, remaining > 0 ? payload + cursor : payload, remaining);
    if (cursor > payloadAvail || size > payloadAvail - cursor) {
      rep.verdicts[blk] = BlockVerdict::Truncated;
    } else if (footerDigestAt(footer, blk) !=
               blockDigestV3(ConstByteSpan(descBytes, kV3DescBytes),
                             ConstByteSpan(payload + cursor, size))) {
      rep.verdicts[blk] = BlockVerdict::ChecksumMismatch;
    } else if (!desc.knownPipeline() ||
               (desc.pipeline == PipelineId::Huffman && !decoder)) {
      rep.verdicts[blk] = BlockVerdict::DecodeError;
    }
    cursor += size;
  }
  if (payloadBegin + cursor + footerB != stream.size()) {
    rep.framingDamaged = true;
  }

  const u32 tiles =
      static_cast<u32>(std::max<u64>(1, (numBlocks + bpt - 1) / bpt));
  const Quantizer quantizer(header.absErrorBound);
  const BlockCodec codec(L);
  const AccessRecorder access{config_.vectorizedAccess,
                              timing_.spec().transactionBytes};
  const HuffDecoder* decoderPtr = decoder ? &*decoder : nullptr;

  const std::function<void(gpusim::BlockCtx&)> salvageBody =
      [&](gpusim::BlockCtx& ctx) {
    const u64 firstBlock = static_cast<u64>(ctx.blockIdx) * bpt;
    const u64 lastBlock = std::min(numBlocks, firstBlock + bpt);
    i32 quantsArr[256];
    u64 decodedElems = 0;
    u64 payloadBytesRead = 0;
    for (u64 blk = firstBlock; blk < lastBlock; ++blk) {
      if (rep.verdicts[blk] != BlockVerdict::Good) continue;
      const V3BlockDesc desc =
          V3BlockDesc::unpack(descs + blk * kV3DescBytes);
      const usize size = desc.payloadBytes(
          psize, payload + blockStart[blk], payloadAvail - blockStart[blk]);
      const u64 eFirst = blk * L;
      const u64 eLast = std::min<u64>(n, eFirst + L);
      try {
        const std::span<i32> q(quantsArr, L);
        decodeBlockV3(desc, ConstByteSpan(payload + blockStart[blk], size),
                      codec, decoderPtr, q);
        dequantizeSpan(quantizer,
                       std::span<const i32>(quantsArr, eLast - eFirst),
                       out.data.data() + eFirst);
        decodedElems += eLast - eFirst;
        payloadBytesRead += size;
      } catch (const Error&) {
        rep.verdicts[blk] = BlockVerdict::DecodeError;
        for (u64 e = eFirst; e < eLast; ++e) out.data[e] = fillValue;
      }
    }
    access.read(ctx.mem, (lastBlock - firstBlock) * kV3DescBytes, 4);
    access.read(ctx.mem, payloadBytesRead, 4);
    access.write(ctx.mem, decodedElems * sizeof(T), sizeof(T));
    ctx.mem.noteOps(decodedElems * 8);
    ctx.mem.noteL1(decodedElems * 8);
  };
  const auto launch =
      launcher_.launch(tiles, salvageBody, 0, {}, "salvage_decode");

  for (u64 blk = 0; blk < numBlocks; ++blk) {
    if (rep.verdicts[blk] == BlockVerdict::Good) continue;
    ++rep.badBlocks;
    if (rep.firstCorruptOffset == DecodeReport::kNoCorruption) {
      rep.firstCorruptOffset = payloadBegin + blockStart[blk];
    }
  }
  rep.goodBlocks = numBlocks - rep.badBlocks;

  out.profile =
      makeProfile(launch, timing_, header.originalBytes(), checksumSeconds);
}

// Explicit instantiations (access checking does not apply to explicit
// instantiation of private members; the public entry points in stream.cpp
// link against these).
template Compressed CompressorStream::compressV3<f32>(std::span<const f32>);
template Compressed CompressorStream::compressV3<f64>(std::span<const f64>);
template Decompressed<f32> CompressorStream::decompressV3<f32>(
    ConstByteSpan, const StreamHeader&);
template Decompressed<f64> CompressorStream::decompressV3<f64>(
    ConstByteSpan, const StreamHeader&);
template BlockRange<f32> CompressorStream::decompressBlocksV3<f32>(
    ConstByteSpan, const StreamHeader&, u64, u64);
template BlockRange<f64> CompressorStream::decompressBlocksV3<f64>(
    ConstByteSpan, const StreamHeader&, u64, u64);
template Compressed CompressorStream::replaceBlocksV3<f32>(
    ConstByteSpan, const StreamHeader&, u64, std::span<const f32>);
template Compressed CompressorStream::replaceBlocksV3<f64>(
    ConstByteSpan, const StreamHeader&, u64, std::span<const f64>);
template void CompressorStream::salvageV3<f32>(ConstByteSpan,
                                               const StreamHeader&, f32,
                                               Salvaged<f32>&);
template void CompressorStream::salvageV3<f64>(ConstByteSpan,
                                               const StreamHeader&, f64,
                                               Salvaged<f64>&);

}  // namespace cuszp2::core
