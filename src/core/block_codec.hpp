// Per-block lossless encoding: Plain-FLE and Outlier-FLE with the
// fine-tuned selection strategy (paper Sec. IV-A, Figs. 5/7/8).
//
// Offset byte layout (Fig. 8):
//   bit 7      mode flag (1 = Outlier-FLE, 0 = Plain-FLE)
//   bits 6..5  outlier size - 1 (1..4 bytes), meaningful in outlier mode
//   bits 4..0  fixed length fl in [0, 31]
//
// Payload layouts:
//   Plain,  fl == 0 : empty (all-zero block — 1 byte total per block)
//   Plain,  fl  > 0 : [signs L/8][planes fl*L/8]
//   Outlier         : [signs L/8][outlier magnitude, 1..4 B LE][planes fl*L/8]
//
// The first element of each block is differenced against 0, keeping blocks
// independent (random access, Sec. VI-B) at the cost of making that element
// the likely outlier — exactly the defect Outlier-FLE repairs.
#pragma once

#include <span>

#include "common/types.hpp"

namespace cuszp2::core {

/// Decoded form of the offset byte.
struct BlockHeader {
  bool outlierMode = false;
  u32 outlierBytes = 1;  // 1..4, meaningful only in outlier mode
  u32 fixedLength = 0;   // 0..31

  u8 pack() const;
  static BlockHeader unpack(u8 offsetByte);
};

/// Payload byte count implied by a header for blocks of `blockSize`
/// elements. Derivable from the offset byte alone — this is what makes the
/// offset array sufficient for locating any block (paper Fig. 5).
usize payloadSize(const BlockHeader& header, u32 blockSize);

/// Worst-case payload for any block of `blockSize` elements (used to size
/// the output buffer before the true lengths are known).
usize maxPayloadSize(u32 blockSize);

/// payloadSize() precomputed for all 256 offset-byte values at a fixed
/// block size. The hot walks (layout validation, decompress pass 1) visit
/// every block of a stream and need only the size, so one table lookup
/// replaces unpack + branchy size arithmetic per block.
class PayloadSizeTable {
 public:
  explicit PayloadSizeTable(u32 blockSize) {
    for (u32 b = 0; b < 256; ++b) {
      sizes_[b] = static_cast<u32>(
          payloadSize(BlockHeader::unpack(static_cast<u8>(b)), blockSize));
    }
  }
  u32 operator[](std::byte offsetByte) const {
    return sizes_[std::to_integer<u8>(offsetByte)];
  }

 private:
  u32 sizes_[256];
};

/// Result of analysing one block of quantization integers.
struct BlockPlan {
  BlockHeader header;
  usize payloadBytes = 0;
  usize plainBytes = 0;    // what Plain-FLE would have used
  usize outlierBytes = 0;  // what Outlier-FLE would have used
};

class BlockCodec {
 public:
  /// `blockSize` must be a multiple of 8 in [8, 256].
  explicit BlockCodec(u32 blockSize);

  u32 blockSize() const { return blockSize_; }

  /// Chooses the encoding for a block of quantization integers under the
  /// given mode policy: Plain forces Plain-FLE; Outlier applies the
  /// fine-tuned selection "use Outlier-FLE only when it is smaller".
  /// A single pass over the absolute differences determines both sizes
  /// without re-computation (Sec. IV-A).
  BlockPlan plan(std::span<const i32> quants, EncodingMode mode) const;

  /// Encodes `quants` into `payload` according to `plan.header`;
  /// `payload` must hold at least plan.payloadBytes.
  void encode(std::span<const i32> quants, const BlockPlan& plan,
              std::byte* payload) const;

  /// Decodes a block: reconstructs the quantization integers from the
  /// offset byte and its payload. `quants.size()` must equal blockSize.
  void decode(const BlockHeader& header, const std::byte* payload,
              std::span<i32> quants) const;

  // Residual-level API: same sign/outlier/bit-plane format, but the caller
  // supplies prediction residuals directly (element 0 is the outlier
  // candidate). The 1-D pipeline wraps these with a first-order difference;
  // the multi-dimensional variant (Sec. VI-D) wraps them with 2-D/3-D
  // Lorenzo prediction.

  BlockPlan planResiduals(std::span<const i32> residuals,
                          EncodingMode mode) const;

  void encodeResiduals(std::span<const i32> residuals, const BlockPlan& plan,
                       std::byte* payload) const;

  void decodeResiduals(const BlockHeader& header, const std::byte* payload,
                       std::span<i32> residuals) const;

 private:
  u32 blockSize_;
};

}  // namespace cuszp2::core
