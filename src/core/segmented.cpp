#include "core/segmented.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cuszp2::core {

namespace {

constexpr u64 kSegMagic = 0x32505A43'47455301ull;  // "SEG..CZP2"
constexpr u32 kSegVersion = 1;

void put64(std::vector<std::byte>& out, u64 v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

u64 get64(ConstByteSpan data, usize pos) {
  require(pos + 8 <= data.size(), "Segmented: truncated container");
  u64 v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<u64>(std::to_integer<u64>(data[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

template <FloatingPoint T>
SegmentedCompressor<T>::SegmentedCompressor(Config config, usize segmentElems,
                                            gpusim::DeviceSpec device)
    : stream_(config, std::move(device)), segmentElems_(segmentElems) {
  require(segmentElems > 0,
          "SegmentedCompressor: segmentElems must be positive");
  buffer_.reserve(segmentElems);
}

template <FloatingPoint T>
void SegmentedCompressor<T>::append(std::span<const T> values) {
  usize consumed = 0;
  while (consumed < values.size()) {
    const usize take = std::min(values.size() - consumed,
                                segmentElems_ - buffer_.size());
    buffer_.insert(buffer_.end(), values.begin() + consumed,
                   values.begin() + consumed + take);
    consumed += take;
    totalElems_ += take;
    if (buffer_.size() == segmentElems_) flushSegment();
  }
}

template <FloatingPoint T>
void SegmentedCompressor<T>::flushSegment() {
  segments_.push_back(
      stream_.compress<T>(std::span<const T>(buffer_)).stream);
  buffer_.clear();
}

template <FloatingPoint T>
usize SegmentedCompressor<T>::compressedBytes() const {
  usize total = 0;
  for (const auto& s : segments_) total += s.size();
  return total;
}

template <FloatingPoint T>
std::vector<std::byte> SegmentedCompressor<T>::finish() {
  if (!buffer_.empty()) flushSegment();

  std::vector<std::byte> out;
  put64(out, kSegMagic);
  put64(out, kSegVersion);  // version u32 + reserved u32
  put64(out, segmentElems_);
  put64(out, segments_.size());
  for (const auto& s : segments_) put64(out, s.size());
  for (const auto& s : segments_) {
    out.insert(out.end(), s.begin(), s.end());
  }

  segments_.clear();
  totalElems_ = 0;
  return out;
}

template <FloatingPoint T>
SegmentedReader<T>::SegmentedReader(ConstByteSpan container,
                                    gpusim::DeviceSpec device)
    : container_(container),
      stream_(Config{.absErrorBound = 1.0}, std::move(device)) {
  require(get64(container, 0) == kSegMagic,
          "SegmentedReader: bad magic (not a segmented cuSZp2 container)");
  require((get64(container, 8) & 0xFFFFFFFFu) == kSegVersion,
          "SegmentedReader: unsupported container version");
  const u64 numSegments = get64(container, 24);
  require(numSegments <= 100'000'000,
          "SegmentedReader: implausible segment count");

  usize offset = 32 + static_cast<usize>(numSegments) * 8;
  entries_.reserve(numSegments);
  for (u64 i = 0; i < numSegments; ++i) {
    Entry e;
    e.length = get64(container, 32 + static_cast<usize>(i) * 8);
    e.offset = offset;
    require(offset + e.length >= offset && offset + e.length <=
                container.size(),
            "SegmentedReader: container shorter than its table of contents");
    const auto header =
        StreamHeader::parse(container.subspan(e.offset, e.length));
    require(header.precision == precisionOf<T>(),
            "SegmentedReader: segment precision mismatch");
    e.elements = header.numElements;
    totalElems_ += e.elements;
    offset += e.length;
    entries_.push_back(e);
  }
}

template <FloatingPoint T>
usize SegmentedReader<T>::segmentElements(usize index) const {
  require(index < entries_.size(), "SegmentedReader: index out of range");
  return static_cast<usize>(entries_[index].elements);
}

template <FloatingPoint T>
std::vector<T> SegmentedReader<T>::segment(usize index) const {
  require(index < entries_.size(), "SegmentedReader: index out of range");
  const auto& e = entries_[index];
  return stream_.decompress<T>(container_.subspan(e.offset, e.length)).data;
}

template <FloatingPoint T>
Salvaged<T> SegmentedReader<T>::segmentResilient(usize index,
                                                 T fillValue) const {
  require(index < entries_.size(), "SegmentedReader: index out of range");
  const auto& e = entries_[index];
  return stream_.decompressResilient<T>(
      container_.subspan(e.offset, e.length), fillValue);
}

template <FloatingPoint T>
std::vector<T> SegmentedReader<T>::all() const {
  std::vector<T> out;
  out.reserve(static_cast<usize>(totalElems_));
  for (usize i = 0; i < entries_.size(); ++i) {
    const auto seg = segment(i);
    out.insert(out.end(), seg.begin(), seg.end());
  }
  return out;
}

template class SegmentedCompressor<f32>;
template class SegmentedCompressor<f64>;
template class SegmentedReader<f32>;
template class SegmentedReader<f64>;

}  // namespace cuszp2::core
