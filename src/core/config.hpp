// Compressor configuration (paper Sec. V-A "Compressor Settings").
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "scan/device_scan.hpp"

namespace cuszp2::core {

/// Default block size; the paper finds 32 the best balance of throughput
/// and ratio on all datasets.
inline constexpr u32 kDefaultBlockSize = 32;

/// Data blocks processed per thread block (tile) in the single kernel.
/// Mirrors a 128-thread CUDA block where each thread owns one data block
/// per iteration (Fig. 11).
inline constexpr u32 kDefaultBlocksPerTile = 128;

struct Config {
  /// Value-range-relative error bound lambda: the reconstruction error of
  /// every point is below lambda * (max - min). Ignored if absErrorBound
  /// is set.
  f64 relErrorBound = 1e-3;

  /// Absolute error bound; used instead of relErrorBound when > 0.
  f64 absErrorBound = 0.0;

  /// Plain-FLE (cuSZp2-P) or Outlier-FLE with per-block selection
  /// (cuSZp2-O). Sec. IV-A.
  EncodingMode mode = EncodingMode::Outlier;

  /// Data-block length in elements. Must be a multiple of 8 in [8, 256].
  u32 blockSize = kDefaultBlockSize;

  /// Data blocks per tile (thread block).
  u32 blocksPerTile = kDefaultBlocksPerTile;

  /// Device-level synchronization algorithm for the global prefix sum.
  /// DecoupledLookback is the cuSZp2 design; ChainedScan reproduces the
  /// cuSZp-v1 baseline and the Sec. VI-E ablation.
  scan::Algorithm syncAlgorithm = scan::Algorithm::DecoupledLookback;

  /// Vectorized (float4-style, warp-coalesced) global memory access.
  /// Disabling reverts to the scalar strided pattern of prior compressors
  /// (Sec. IV-B; ablation Sec. VI-E).
  bool vectorizedAccess = true;

  /// Stamp a CRC-32 over the offset + payload regions into the header;
  /// decompression then rejects corrupted streams instead of decoding
  /// garbage. Costs one extra bandwidth pass over the compressed bytes.
  bool checksum = false;

  /// Write format-version-2 streams with a per-block CRC footer (16-bit
  /// digest per block). Strict decompression then pins corruption to the
  /// failing block, and decompressResilient can quarantine damaged blocks
  /// while recovering every other block bit-exactly. Costs 2 bytes per
  /// block plus one bandwidth pass over the compressed bytes.
  bool blockChecksums = false;

  /// Detect-and-retry budget for simulated soft errors (gpusim FaultPlan):
  /// when > 0, compress/decompress launches compute per-tile write digests
  /// inside the kernel and verify them after the launch; a mismatch (or an
  /// aborted launch) triggers up to this many relaunches before the Error
  /// propagates. 0 disables verification (no overhead).
  u32 faultRetries = 0;

  /// Lossy-conversion rounding: Nearest (default, |err| <= eb) or Ceiling
  /// (one-sided err in (-2eb, 0], the paper's "rounding (or ceiling)").
  RoundingMode roundingMode = RoundingMode::Nearest;

  /// In-block prediction. FirstOrder is the paper's pipeline; SecondOrder
  /// exists as a design-validation ablation (see Predictor's doc comment).
  /// Recorded in the stream header, so decompression is self-describing.
  Predictor predictor = Predictor::FirstOrder;

  /// Per-block encoding pipeline policy (core/pipeline.hpp). Legacy emits
  /// the v1/v2 FLE wire format bit-exactly; any other value emits format
  /// v3, where each block records its pipeline id — Auto selects the
  /// smallest candidate per block, the remaining values pin one pipeline.
  /// Part of operator==, so the service batcher never fuses jobs across
  /// pipeline policies.
  PipelineMode pipeline = PipelineMode::Legacy;

  /// Memberwise equality. The service-layer batching scheduler coalesces
  /// only requests with identical configs (same error bound, mode, layout
  /// and integrity settings), so one fused launch serves them all without
  /// changing any request's output bytes.
  bool operator==(const Config&) const = default;

  void validate() const {
    require(relErrorBound > 0.0 || absErrorBound > 0.0,
            "Config: an error bound must be positive");
    require(syncAlgorithm != scan::Algorithm::ReduceThenScan,
            "Config: reduce-then-scan needs multiple kernels and cannot "
            "run inside the single-kernel pipeline (use the scan module "
            "directly to benchmark it)");
    require(blockSize >= 8 && blockSize <= 256 && blockSize % 8 == 0,
            "Config: blockSize must be a multiple of 8 in [8, 256]");
    require(blocksPerTile >= 1 && blocksPerTile <= 4096,
            "Config: blocksPerTile must be in [1, 4096]");
    require(pipeline == PipelineMode::Legacy ||
                predictor == Predictor::FirstOrder,
            "Config: pipeline modes compose their own per-block predictors "
            "and require predictor == FirstOrder");
  }
};

}  // namespace cuszp2::core
