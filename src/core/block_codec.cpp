#include "core/block_codec.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "core/fle.hpp"

namespace cuszp2::core {

u8 BlockHeader::pack() const {
  u8 b = static_cast<u8>(fixedLength & 0x1Fu);
  if (outlierMode) {
    b |= 0x80u;
    b |= static_cast<u8>(((outlierBytes - 1) & 0x3u) << 5);
  }
  return b;
}

BlockHeader BlockHeader::unpack(u8 offsetByte) {
  BlockHeader h;
  h.outlierMode = (offsetByte & 0x80u) != 0;
  h.outlierBytes = h.outlierMode ? (((offsetByte >> 5) & 0x3u) + 1) : 1;
  h.fixedLength = offsetByte & 0x1Fu;
  return h;
}

usize payloadSize(const BlockHeader& header, u32 blockSize) {
  const usize pb = planeBytes(blockSize);
  if (header.outlierMode) {
    return pb + header.outlierBytes +
           static_cast<usize>(header.fixedLength) * pb;
  }
  return header.fixedLength == 0
             ? 0
             : pb + static_cast<usize>(header.fixedLength) * pb;
}

usize maxPayloadSize(u32 blockSize) {
  const usize pb = planeBytes(blockSize);
  // Outlier mode with a 4-byte outlier and 31 planes dominates.
  return pb + 4 + 31 * pb;
}

BlockCodec::BlockCodec(u32 blockSize) : blockSize_(blockSize) {
  require(blockSize >= 8 && blockSize <= 256 && blockSize % 8 == 0,
          "BlockCodec: blockSize must be a multiple of 8 in [8, 256]");
}

// ---- Residual-level implementation ------------------------------------

BlockPlan BlockCodec::planResiduals(std::span<const i32> residuals,
                                    EncodingMode mode) const {
  require(residuals.size() == blockSize_,
          "BlockCodec::planResiduals: wrong block size");

  // One pass over absolute residuals yields both candidate sizes
  // (the paper's "simply iterating the absolute values" selection). Max is
  // order-independent, so the vector reduction over the tail plus one
  // scalar max for the head matches the scalar sweep exactly.
  u32 maxAbsTail = 0;
  const u32 absFirst = absU32(residuals[0]);
  if (!simd::maxAbsTailU32(residuals, &maxAbsTail)) {
    for (usize i = 1; i < residuals.size(); ++i) {
      maxAbsTail = std::max(maxAbsTail, absU32(residuals[i]));
    }
  }
  const u32 maxAbsAll = std::max(maxAbsTail, absFirst);

  const usize pb = planeBytes(blockSize_);
  const u32 flPlain = effectiveBits(maxAbsAll);
  const u32 flTail = effectiveBits(maxAbsTail);
  const u32 outBytes = std::max<u32>(1, bytesFor(absFirst));

  BlockPlan p;
  p.plainBytes = flPlain == 0 ? 0 : pb + static_cast<usize>(flPlain) * pb;
  p.outlierBytes = pb + outBytes + static_cast<usize>(flTail) * pb;

  const bool useOutlier =
      mode == EncodingMode::Outlier && p.outlierBytes < p.plainBytes;

  p.header.outlierMode = useOutlier;
  p.header.outlierBytes = useOutlier ? outBytes : 1;
  p.header.fixedLength = useOutlier ? flTail : flPlain;
  p.payloadBytes = payloadSize(p.header, blockSize_);
  return p;
}

void BlockCodec::encodeResiduals(std::span<const i32> residuals,
                                 const BlockPlan& plan,
                                 std::byte* payload) const {
  require(residuals.size() == blockSize_,
          "BlockCodec::encodeResiduals: wrong block size");
  if (plan.payloadBytes == 0) return;  // zero block: offset byte only

  u32 absArr[256];
  std::span<u32> absVals(absArr, blockSize_);
  const usize pb = planeBytes(blockSize_);
  std::byte* cursor = payload;

  if (!simd::absAndPackSigns(residuals, absVals.data(), cursor)) {
    for (usize i = 0; i < blockSize_; ++i) absVals[i] = absU32(residuals[i]);
    packSigns(residuals, cursor);
  }
  cursor += pb;

  if (plan.header.outlierMode) {
    storeLE(cursor, absVals[0], plan.header.outlierBytes);
    cursor += plan.header.outlierBytes;
    absVals[0] = 0;  // outlier stored out-of-band; planes cover the tail
  }

  packPlanes(absVals, plan.header.fixedLength, cursor);
}

void BlockCodec::decodeResiduals(const BlockHeader& header,
                                 const std::byte* payload,
                                 std::span<i32> residuals) const {
  require(residuals.size() == blockSize_,
          "BlockCodec::decodeResiduals: wrong block size");

  if (!header.outlierMode && header.fixedLength == 0) {
    std::fill(residuals.begin(), residuals.end(), 0);
    return;
  }

  const usize pb = planeBytes(blockSize_);
  const std::byte* cursor = payload;
  const std::byte* signs = cursor;
  cursor += pb;

  u32 outlierAbs = 0;
  if (header.outlierMode) {
    outlierAbs = loadLE(cursor, header.outlierBytes);
    cursor += header.outlierBytes;
  }

  u32 absArr[256];
  std::span<u32> absVals(absArr, blockSize_);
  unpackPlanes(cursor, header.fixedLength, absVals);
  if (header.outlierMode) absVals[0] = outlierAbs;

  if (!simd::applySigns(signs, absVals, residuals.data())) {
    for (usize i = 0; i < blockSize_; ++i) {
      residuals[i] = signBit(signs, i) ? -static_cast<i32>(absVals[i])
                                       : static_cast<i32>(absVals[i]);
    }
  }
}

// ---- Quantization-integer wrappers (1-D first-order difference) --------

BlockPlan BlockCodec::plan(std::span<const i32> quants,
                           EncodingMode mode) const {
  require(quants.size() == blockSize_, "BlockCodec::plan: wrong block size");
  i32 diffs[256];
  if (!simd::diffI32(quants, diffs)) {
    i32 prev = 0;
    for (usize i = 0; i < blockSize_; ++i) {
      diffs[i] = quants[i] - prev;
      prev = quants[i];
    }
  }
  return planResiduals(std::span<const i32>(diffs, blockSize_), mode);
}

void BlockCodec::encode(std::span<const i32> quants, const BlockPlan& plan,
                        std::byte* payload) const {
  require(quants.size() == blockSize_,
          "BlockCodec::encode: wrong block size");
  if (plan.payloadBytes == 0) return;
  i32 diffs[256];
  if (!simd::diffI32(quants, diffs)) {
    i32 prev = 0;
    for (usize i = 0; i < blockSize_; ++i) {
      diffs[i] = quants[i] - prev;
      prev = quants[i];
    }
  }
  encodeResiduals(std::span<const i32>(diffs, blockSize_), plan, payload);
}

void BlockCodec::decode(const BlockHeader& header, const std::byte* payload,
                        std::span<i32> quants) const {
  require(quants.size() == blockSize_,
          "BlockCodec::decode: wrong block size");
  i32 diffs[256];
  std::span<i32> d(diffs, blockSize_);
  decodeResiduals(header, payload, d);
  if (!simd::prefixSumI32(d, quants.data())) {
    i32 acc = 0;
    for (usize i = 0; i < blockSize_; ++i) {
      acc += d[i];
      quants[i] = acc;
    }
  }
}

}  // namespace cuszp2::core
