// cuSZp2 public API: single-kernel error-bounded lossy compression and
// decompression under the GPU execution model (paper Secs. III and IV).
//
// compress():   Lossy Conversion -> Lossless Encoding -> Global Prefix-sum
//               (decoupled lookback) -> Block Concatenation, all inside one
//               simulated kernel launch.
// decompress(): offset scan -> payload decode -> reconstruction, also one
//               kernel; all-zero blocks are flushed via device memset.
// decompressBlocks(): random access to a block range (paper Sec. VI-B):
//               the offset array alone is scanned to locate the range, then
//               only the requested blocks are decoded.
//
// Every call returns a KernelProfile with the recorded memory counters,
// sync statistics, and the modelled device timing used by the bench
// harness; wall-clock time of the host simulation is reported separately
// and is never used for the figures.
//
// Compressor is a thin convenience wrapper: each call runs on a
// thread-local core::CompressorStream (see stream.hpp), so repeated
// one-shot calls already reuse warm scratch and the shared worker pool.
// Layers with a long-lived compression loop should hold a
// CompressorStream directly.
#pragma once

#include "core/stream.hpp"

namespace cuszp2::core {

class Compressor {
 public:
  explicit Compressor(Config config,
                      gpusim::DeviceSpec device = gpusim::a100_40gb());

  const Config& config() const { return config_; }
  const gpusim::DeviceSpec& device() const { return device_; }

  /// Compresses `data`, producing a self-describing stream. When
  /// Config::absErrorBound is unset, the value range is reduced on-device
  /// first (and its modelled cost charged) to honour the REL bound.
  template <FloatingPoint T>
  Compressed compress(std::span<const T> data) const;

  /// Decompresses a full stream produced by compress().
  template <FloatingPoint T>
  Decompressed<T> decompress(ConstByteSpan stream) const;

  /// Salvage decode of an untrusted/damaged stream: quarantines corrupt
  /// blocks (filling their elements with `fillValue`) and returns a
  /// DecodeReport instead of throwing. See
  /// CompressorStream::decompressResilient.
  template <FloatingPoint T>
  Salvaged<T> decompressResilient(ConstByteSpan stream,
                                  T fillValue = T{}) const;

  /// Random access: decodes blocks [firstBlock, firstBlock + blockCount).
  template <FloatingPoint T>
  BlockRange<T> decompressBlocks(ConstByteSpan stream, u64 firstBlock,
                                 u64 blockCount) const;

  /// Random-access write (paper Sec. VI-B mentions writes behave like
  /// reads): re-encodes the blocks covering `values` — which replace the
  /// elements starting at firstBlock * blockSize — under the stream's own
  /// error bound and mode, and splices them into a new stream. `values`
  /// must cover whole blocks (its size is a multiple of the block size, or
  /// ends exactly at the stream's final element).
  template <FloatingPoint T>
  Compressed replaceBlocks(ConstByteSpan stream, u64 firstBlock,
                           std::span<const T> values) const;

 private:
  /// The calling thread's stream, re-targeted to this compressor's
  /// configuration and device.
  CompressorStream& threadStream() const;

  Config config_;
  gpusim::DeviceSpec device_;
};

}  // namespace cuszp2::core
