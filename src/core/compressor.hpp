// cuSZp2 public API: single-kernel error-bounded lossy compression and
// decompression under the GPU execution model (paper Secs. III and IV).
//
// compress():   Lossy Conversion -> Lossless Encoding -> Global Prefix-sum
//               (decoupled lookback) -> Block Concatenation, all inside one
//               simulated kernel launch.
// decompress(): offset scan -> payload decode -> reconstruction, also one
//               kernel; all-zero blocks are flushed via device memset.
// decompressBlocks(): random access to a block range (paper Sec. VI-B):
//               the offset array alone is scanned to locate the range, then
//               only the requested blocks are decoded.
//
// Every call returns a KernelProfile with the recorded memory counters,
// sync statistics, and the modelled device timing used by the bench
// harness; wall-clock time of the host simulation is reported separately
// and is never used for the figures.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/format.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/timing.hpp"

namespace cuszp2::core {

struct KernelProfile {
  gpusim::MemCounters mem;
  gpusim::SyncStats sync;
  gpusim::KernelTiming timing;

  /// Modelled end-to-end time of the API call on the configured device:
  /// the single kernel + launch overhead, plus (only when configured) the
  /// REL-bound range reduction and the checksum pass. There is no PCIe or
  /// CPU stage — that is the point of the paper.
  f64 endToEndSeconds = 0.0;

  /// End-to-end throughput w.r.t. the original data size, the paper's
  /// headline metric (Sec. II).
  f64 endToEndGBps = 0.0;

  /// Host wall-clock seconds of the simulation run (diagnostic only).
  f64 wallSeconds = 0.0;
};

struct Compressed {
  std::vector<std::byte> stream;
  KernelProfile profile;
  u64 originalBytes = 0;
  f64 ratio = 0.0;
};

template <FloatingPoint T>
struct Decompressed {
  std::vector<T> data;
  KernelProfile profile;
};

template <FloatingPoint T>
struct BlockRange {
  /// Index of the first element covered by the decoded range.
  u64 firstElement = 0;
  std::vector<T> values;
  KernelProfile profile;
};

class Compressor {
 public:
  explicit Compressor(Config config,
                      gpusim::DeviceSpec device = gpusim::a100_40gb());

  const Config& config() const { return config_; }
  const gpusim::DeviceSpec& device() const { return timing_.spec(); }

  /// Compresses `data`, producing a self-describing stream. When
  /// Config::absErrorBound is unset, the value range is reduced on-device
  /// first (and its modelled cost charged) to honour the REL bound.
  template <FloatingPoint T>
  Compressed compress(std::span<const T> data) const;

  /// Decompresses a full stream produced by compress().
  template <FloatingPoint T>
  Decompressed<T> decompress(ConstByteSpan stream) const;

  /// Random access: decodes blocks [firstBlock, firstBlock + blockCount).
  template <FloatingPoint T>
  BlockRange<T> decompressBlocks(ConstByteSpan stream, u64 firstBlock,
                                 u64 blockCount) const;

  /// Random-access write (paper Sec. VI-B mentions writes behave like
  /// reads): re-encodes the blocks covering `values` — which replace the
  /// elements starting at firstBlock * blockSize — under the stream's own
  /// error bound and mode, and splices them into a new stream. `values`
  /// must cover whole blocks (its size is a multiple of the block size, or
  /// ends exactly at the stream's final element).
  template <FloatingPoint T>
  Compressed replaceBlocks(ConstByteSpan stream, u64 firstBlock,
                           std::span<const T> values) const;

 private:
  Config config_;
  gpusim::TimingModel timing_;
  mutable gpusim::Launcher launcher_;
};

}  // namespace cuszp2::core
