// crash_drill — exhaustive crash-point enumeration for the durability
// stack (docs/DURABILITY.md).
//
// Store leg: a scripted churn workload (puts, rewrites, erases, gc,
// compaction commits, drill corruption, mid-script snapshots) runs over a
// journaled BlockStore. A counting pass learns how many operations pass
// each crash site (journal flushes, sync barriers, atomic-save renames,
// directory syncs); the drill then re-runs the workload once per
// enumerated (site, ordinal, mode) with a seeded CrashPlan armed, catches
// the simulated process death, and recovers from exactly the bytes the
// "dead" process left behind. After every single crash point:
//
//   * BlockStore::recover succeeds (only a damaged journal *header* may
//     refuse, and the drill never damages headers);
//   * the recovered store passes checkInvariants() and verifyAll();
//   * every ACKNOWLEDGED operation is present — an acked put/rewrite
//     reads back byte-identical, an acked erase stays erased. The one
//     in-flight operation may be present or absent (it was never acked),
//     but whichever way it landed the store still reads consistently;
//   * the resumed journal accepts new acknowledged work.
//
// Service leg: the same treatment for durable intake. A crafted job
// journal (accepts for jobs 1..3, a resolve for job 2, a garbage tail)
// must replay exactly jobs {1, 3} — exactly-once, original order, outputs
// byte-identical to a fault-free serial run — and a second restart must
// replay nothing. Then every journal crash point of a live submission
// burst is enumerated: the disk image at death is copied aside, a
// restarted service replays exactly the accepted-but-unresolved jobs from
// that image, and every replayed ticket completes with the reference
// bytes.
//
// The whole drill runs twice with the same seed and the two fingerprints
// (recovery reports, recovered-store stats, object CRCs, replay sets)
// must be bit-identical.
//
//   usage: crash_drill [--seed N] [--fast]
//
// Exit 0 when every invariant held at every crash point; 1 otherwise,
// printing the seed needed to replay the failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "cas/block_store.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "io/crash.hpp"
#include "io/journal.hpp"
#include "service/durability.hpp"
#include "service/service.hpp"

using namespace cuszp2;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++failures;
}

struct DrillTotals {
  u64 crashPoints = 0;
  u64 tornTails = 0;
  u64 replayedRecords = 0;
  u64 discardedBytes = 0;
  u64 serviceReplays = 0;
};

/// FNV-style fold for the run fingerprint.
struct Fingerprint {
  u64 fp = 0xcbf29ce484222325ull;
  void mix(u64 v) {
    fp ^= v;
    fp *= 0x100000001b3ull;
  }
};

std::string scratchDir(const std::string& leg, u64 seed) {
  return (std::filesystem::temp_directory_path() /
          ("crash_drill_" + std::to_string(::getpid()) + "_" + leg + "_" +
           std::to_string(seed)))
      .string();
}

void resetDir(const std::string& dir) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
}

// ---------------------------------------------------------------------
// Store leg

struct Corpus {
  std::vector<std::vector<std::byte>> blobs;
  std::vector<std::vector<std::byte>> streams;  ///< hot v1/v2 encodings
};

Corpus buildCorpus(u64 seed) {
  Corpus c;
  for (u32 i = 0; i < 4; ++i) {
    std::vector<std::byte> b(3000 + 900 * i);
    SplitMix64 mix(seed ^ (i + 1));
    for (auto& x : b) x = static_cast<std::byte>(mix.next() & 0xFF);
    c.blobs.push_back(std::move(b));
  }
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  core::CompressorStream codec(cfg);
  for (u32 i = 0; i < 2; ++i) {
    const auto field = datagen::generateF32("cesm_atm", i, 2048);
    c.streams.push_back(codec.compress<f32>(std::span<const f32>(field)).stream);
  }
  return c;
}

cas::StoreConfig storeCfg() {
  return {.chunkBytes = 1024, .deferGc = true};
}

enum class OpKind { Put, PutStream, Erase, Gc, Compact, Save, Corrupt };

/// Fixed op-kind sequence (parameters are seeded): every durability
/// surface appears — rewrites, erases, gc, compaction commits, drill
/// corruption, and two mid-script snapshots so the journal-reset window
/// and the tick-skip rule both get crash points.
std::vector<OpKind> churnScript(bool fast) {
  using K = OpKind;
  if (fast) {
    return {K::Put,  K::Put,     K::PutStream, K::Erase, K::Gc,  K::Compact,
            K::Save, K::Put,     K::Corrupt,   K::Erase, K::Put, K::Gc};
  }
  return {K::Put,     K::Put,  K::PutStream, K::Put,     K::Erase, K::Put,
          K::Gc,      K::Compact, K::Put,    K::Save,    K::Put,   K::Corrupt,
          K::Erase,   K::Put,  K::Gc,        K::PutStream, K::Compact, K::Put,
          K::Erase,   K::Save, K::Put,       K::Gc,      K::Corrupt, K::Put};
}

/// What the "process" had acknowledged when it died.
struct ChurnOutcome {
  std::map<std::string, std::vector<std::byte>> acked;  ///< key -> bytes
  std::vector<std::string> erased;                      ///< acked erases
  std::string pendingKind;  ///< op in flight at the crash ("" = completed)
  std::string pendingKey;
  bool crashed = false;
};

std::pair<std::string, std::string> splitKey(const std::string& key) {
  const auto slash = key.find('/');
  return {key.substr(0, slash), key.substr(slash + 1)};
}

/// Runs the scripted churn. Deterministic in `seed`: every rng draw
/// happens on the same schedule whether or not a crash plan is armed, so
/// run N with a crash at op K is a byte-exact prefix of the clean run.
ChurnOutcome runChurn(u64 seed, bool fast, const Corpus& corpus,
                      const std::string& indexPath,
                      const std::string& journalPath) {
  ChurnOutcome out;
  Rng rng(seed);
  const char* tenants[] = {"climate", "cosmo", "fusion"};
  auto store = std::make_unique<cas::BlockStore>(storeCfg());

  const auto pickAcked = [&]() -> std::string {
    auto it = out.acked.begin();
    std::advance(it, static_cast<long>(rng.uniformInt(out.acked.size())));
    return it->first;
  };

  try {
    out.pendingKind = "attach";
    out.pendingKey = journalPath;
    store->attachJournal(journalPath);
    out.pendingKind.clear();
    out.pendingKey.clear();

    for (OpKind op : churnScript(fast)) {
      switch (op) {
        case OpKind::Put: {
          const std::string tenant = tenants[rng.uniformInt(3)];
          const std::string name = "blob-" + std::to_string(rng.uniformInt(4));
          const auto& payload = corpus.blobs[rng.uniformInt(corpus.blobs.size())];
          out.pendingKind = "put";
          out.pendingKey = tenant + "/" + name;
          store->put(tenant, name, ConstByteSpan(payload));
          out.acked[out.pendingKey] = payload;
          break;
        }
        case OpKind::PutStream: {
          const std::string tenant = tenants[rng.uniformInt(3)];
          const std::string name = "step-" + std::to_string(rng.uniformInt(2));
          const auto& payload =
              corpus.streams[rng.uniformInt(corpus.streams.size())];
          out.pendingKind = "put";
          out.pendingKey = tenant + "/" + name;
          store->put(tenant, name, ConstByteSpan(payload));
          out.acked[out.pendingKey] = payload;
          break;
        }
        case OpKind::Erase: {
          if (out.acked.empty()) break;
          const std::string key = pickAcked();
          const auto [tenant, name] = splitKey(key);
          out.pendingKind = "erase";
          out.pendingKey = key;
          store->erase(tenant, name);
          out.erased.push_back(key);
          out.acked.erase(key);
          break;
        }
        case OpKind::Gc: {
          out.pendingKind = "gc";
          out.pendingKey.clear();
          store->gc();
          break;
        }
        case OpKind::Compact: {
          const auto cands = store->compactionCandidates(0, 1);
          if (cands.empty()) break;
          const auto& c = cands.front();
          out.pendingKind = "compact";
          out.pendingKey = c.tenant + "/" + c.name;
          store->commitCompaction(c.tenant, c.name, ConstByteSpan(c.bytes),
                                  c.generation);
          break;  // identical bytes: the acked content is unchanged
        }
        case OpKind::Save: {
          out.pendingKind = "save";
          out.pendingKey = indexPath;
          store->save(indexPath);
          break;
        }
        case OpKind::Corrupt: {
          if (out.acked.empty()) break;
          const std::string key = pickAcked();
          const auto [tenant, name] = splitKey(key);
          const usize offset = rng.uniformInt(out.acked[key].size());
          out.pendingKind = "corrupt";
          out.pendingKey = key;
          store->corruptForDrill(tenant, name, offset);
          out.acked[key] = store->get(tenant, name);
          break;
        }
      }
      out.pendingKind.clear();
      out.pendingKey.clear();
    }
  } catch (const io::CrashError&) {
    out.crashed = true;
  }
  return out;
}

/// Recovers from the crashed run's disk image and asserts the durability
/// contract. Returns the recovered-state contribution to the fingerprint.
void recoverAndCheck(const ChurnOutcome& out, const std::string& indexPath,
                     const std::string& journalPath, const Corpus& corpus,
                     const std::string& tag, DrillTotals& totals,
                     Fingerprint& fp) {
  std::unique_ptr<cas::BlockStore> store;
  cas::RecoveryReport rep;
  if (!std::filesystem::exists(journalPath)) {
    // The crash hit the journal attach itself — nothing could have been
    // acknowledged, and the snapshot (if any) is the whole truth.
    check(out.acked.empty(), tag + ": no op can be acked before the journal");
    store = std::filesystem::exists(indexPath)
                ? cas::BlockStore::load(indexPath, storeCfg())
                : std::make_unique<cas::BlockStore>(storeCfg());
  } else {
    try {
      store = cas::BlockStore::recover(indexPath, journalPath, storeCfg(),
                                       &rep);
    } catch (const Error& e) {
      check(false, tag + ": recovery must succeed at every injected "
                         "crash point: " + e.what());
      return;
    }
  }

  try {
    store->checkInvariants();
  } catch (const Error& e) {
    check(false, tag + ": recovered store invariants: " + e.what());
  }
  std::string err;
  check(store->verifyAll(&err), tag + ": recovered store verifies: " + err);

  for (const auto& [key, bytes] : out.acked) {
    const auto [tenant, name] = splitKey(key);
    if (key == out.pendingKey) {
      // The in-flight (never acked) op targeted this key; it may have
      // become durable or not, but either state must read consistently.
      if (store->contains(tenant, name)) store->get(tenant, name);
      continue;
    }
    check(store->contains(tenant, name), tag + ": acked object present: " + key);
    if (store->contains(tenant, name)) {
      check(store->get(tenant, name) == bytes,
            tag + ": acked bytes intact: " + key);
      fp.mix(store->crcOf(tenant, name));
    }
  }
  for (const std::string& key : out.erased) {
    if (out.acked.count(key) != 0) continue;  // re-put after the erase
    if (key == out.pendingKey) continue;      // in-flight re-put may land
    const auto [tenant, name] = splitKey(key);
    check(!store->contains(tenant, name), tag + ": acked erase holds: " + key);
  }

  // The resumed journal must acknowledge new work.
  store->put("post", "recovery", ConstByteSpan(corpus.blobs[0]));
  check(store->get("post", "recovery") == corpus.blobs[0],
        tag + ": post-recovery put serves");
  if (std::filesystem::exists(journalPath)) {
    check(store->journalStatus().attached, tag + ": journal resumed");
  }

  const cas::StoreStats s = store->stats();
  fp.mix(s.objects);
  fp.mix(s.uniqueChunks);
  fp.mix(s.logicalBytes);
  fp.mix(s.physicalBytes);
  fp.mix(s.puts);
  fp.mix(s.erases);
  fp.mix(s.gcFreedChunks);
  fp.mix(s.resurrections);
  fp.mix(rep.snapshotLoaded);
  fp.mix(rep.snapshotTick);
  fp.mix(rep.journalRecords);
  fp.mix(rep.replayedRecords);
  fp.mix(rep.skippedRecords);
  fp.mix(rep.tornTail);
  fp.mix(rep.discardedBytes);

  totals.tornTails += rep.tornTail ? 1 : 0;
  totals.replayedRecords += rep.replayedRecords;
  totals.discardedBytes += rep.discardedBytes;
}

void storeDrill(u64 seed, bool fast, DrillTotals& totals, Fingerprint& fp) {
  const Corpus corpus = buildCorpus(seed);
  const std::string dir = scratchDir("store", seed);
  const std::string indexPath = dir + "/store.cas";
  const std::string journalPath = indexPath + ".jnl";

  const io::CrashSite sites[] = {io::CrashSite::Write, io::CrashSite::Sync,
                                 io::CrashSite::Rename,
                                 io::CrashSite::DirSync};

  // Counting pass: how many operations reach each crash site.
  std::map<io::CrashSite, u64> points;
  for (io::CrashSite site : sites) {
    resetDir(dir);
    io::startCrashCounting(site, "");
    const ChurnOutcome base =
        runChurn(seed, fast, corpus, indexPath, journalPath);
    points[site] = io::stopCrashCounting();
    check(!base.crashed, "counting pass must not crash");
    check(points[site] > 0,
          std::string("workload passes site ") + toString(site));
  }

  for (io::CrashSite site : sites) {
    const std::vector<io::CrashMode> modes =
        site == io::CrashSite::Write
            ? std::vector<io::CrashMode>{io::CrashMode::Tear,
                                         io::CrashMode::Truncate,
                                         io::CrashMode::Drop}
            // Barrier sites persist nothing by definition; the mode is
            // irrelevant, so enumerate each ordinal once.
            : std::vector<io::CrashMode>{io::CrashMode::Drop};
    std::fprintf(stderr, "  store site %s: %llu points\n", toString(site),
                 static_cast<unsigned long long>(points[site]));
    for (u64 op = 0; op < points[site]; ++op) {
      for (io::CrashMode mode : modes) {
        const std::string tag = "store crash(" + std::string(toString(site)) +
                                "," + toString(mode) + "," +
                                std::to_string(op) + ")";
        resetDir(dir);
        io::CrashPlan plan;
        plan.seed = seed;
        plan.site = site;
        plan.mode = mode;
        plan.triggerOp = op;
        io::installCrashPlan(plan);
        const ChurnOutcome out =
            runChurn(seed, fast, corpus, indexPath, journalPath);
        io::clearCrashPlan();
        check(out.crashed, tag + ": the armed plan fired");
        recoverAndCheck(out, indexPath, journalPath, corpus, tag, totals, fp);
        ++totals.crashPoints;
      }
    }
  }

  // A clean (uncrashed) run must also recover: the journal tail after the
  // last snapshot replays with nothing torn.
  resetDir(dir);
  const ChurnOutcome clean =
      runChurn(seed, fast, corpus, indexPath, journalPath);
  check(!clean.crashed, "clean run does not crash");
  recoverAndCheck(clean, indexPath, journalPath, corpus, "store clean-run",
                  totals, fp);

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Service leg

std::vector<std::byte> toBytes(const std::vector<f32>& v) {
  std::vector<std::byte> bytes(v.size() * sizeof(f32));
  if (!bytes.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

core::Config jobConfig() {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.checksum = true;
  return cfg;
}

service::ServiceConfig durableServiceConfig(const std::string& journalPath) {
  service::ServiceConfig sc;
  sc.workers = 1;
  sc.maxBatchJobs = 1;  // deterministic: 1 job = 1 dispatch, FIFO resolves
  sc.startPaused = true;
  sc.jobJournalPath = journalPath;
  return sc;
}

/// Crafted-journal restart: the spec case from docs/DURABILITY.md.
void serviceCraftedJournal(u64 seed, u32 jobs, DrillTotals& totals,
                           Fingerprint& fp) {
  const std::string dir = scratchDir("svc_crafted", seed);
  resetDir(dir);
  const std::string jpath = dir + "/jobs.jnl";
  const core::Config cfg = jobConfig();
  core::CompressorStream ref(cfg);

  std::vector<std::vector<f32>> fields;
  std::vector<std::vector<std::byte>> expected;
  for (u32 i = 0; i < jobs; ++i) {
    fields.push_back(datagen::generateF32("cesm_atm", i, 2048));
    expected.push_back(
        ref.compress<f32>(std::span<const f32>(fields.back())).stream);
  }

  {
    io::JournalWriter w(jpath, service::kJobJournalOwnerTag, 0);
    for (u32 i = 0; i < jobs; ++i) {
      service::JobAcceptRecord acc;
      acc.jobId = i + 1;
      acc.tenant = "climate";
      acc.kind = service::JobKind::Compress;
      acc.precision = Precision::F32;
      acc.config = cfg;
      acc.input = toBytes(fields[i]);
      const auto payload = service::encodeJobAccept(acc);
      w.append(service::kJobRecordAccept, ConstByteSpan(payload));
    }
    // Job 2 resolved before the "crash": it must NOT replay.
    const auto resolved =
        service::encodeJobResolve(2, service::Outcome::Completed);
    w.append(service::kJobRecordResolve, ConstByteSpan(resolved));
    w.sync();
  }
  {
    // Torn tail: seeded garbage after the valid records, as a crash
    // mid-append would leave. Replay must discard it silently.
    std::FILE* f = std::fopen(jpath.c_str(), "ab");
    SplitMix64 mix(seed);
    std::vector<std::byte> junk(37);
    for (auto& b : junk) b = static_cast<std::byte>(mix.next() & 0xFF);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }

  {
    service::CompressionService svc(durableServiceConfig(jpath));
    const auto& replayed = svc.replayedJobs();
    check(replayed.size() == jobs - 1,
          "crafted journal replays every unresolved job (" +
              std::to_string(replayed.size()) + " of " +
              std::to_string(jobs - 1) + ")");
    std::set<u64> want;
    for (u32 i = 0; i < jobs; ++i) {
      if (i + 1 != 2) want.insert(i + 1);
    }
    u64 prev = 0;
    for (const service::ReplayedJob& rj : replayed) {
      check(want.count(rj.originalJobId) == 1,
            "replayed id " + std::to_string(rj.originalJobId) + " expected");
      check(rj.originalJobId > prev, "replay preserves original id order");
      prev = rj.originalJobId;
    }
    svc.resume();
    for (const service::ReplayedJob& rj : replayed) {
      check(rj.ticket.waitFor(std::chrono::seconds(120)),
            "replayed job " + std::to_string(rj.originalJobId) + " resolves");
      const service::JobResult& r = rj.ticket.result();
      check(r.outcome == service::Outcome::Completed,
            "replayed job " + std::to_string(rj.originalJobId) + " completes");
      check(r.compressed.stream == expected[rj.originalJobId - 1],
            "replayed job " + std::to_string(rj.originalJobId) +
                " output byte-identical to the fault-free run");
      fp.mix(rj.originalJobId);
      totals.serviceReplays += 1;
    }
    check(svc.jobJournalStatus().attached, "job journal attached after replay");
    svc.shutdown();
    fp.mix(svc.stats().completed);
  }
  {
    // Exactly-once: the journal now carries the superseding accepts and
    // their resolves — a second restart replays nothing.
    service::CompressionService svc(durableServiceConfig(jpath));
    check(svc.replayedJobs().empty(),
          "second restart replays nothing (exactly-once)");
    svc.shutdown();
  }
  std::filesystem::remove_all(dir);
}

struct BurstOutcome {
  std::vector<u64> ackedIds;  ///< ids whose submit returned a ticket
  bool crashed = false;
};

/// One "process life": construct a durable service, submit `jobs`
/// compress jobs, drain, shut down. A CrashError anywhere aborts the life
/// exactly where a real death would.
BurstOutcome runServiceBurst(const std::string& jpath,
                             const std::vector<std::vector<f32>>& fields) {
  BurstOutcome out;
  std::optional<service::CompressionService> svc;
  std::vector<service::Ticket> tickets;
  try {
    svc.emplace(durableServiceConfig(jpath));
    const core::Config cfg = jobConfig();
    for (const auto& field : fields) {
      service::SubmitResult r = svc->submitCompress<f32>(
          "climate", std::span<const f32>(field), cfg);
      check(r.accepted(), "burst submission accepted");
      out.ackedIds.push_back(r.ticket.id());
      tickets.push_back(r.ticket);
    }
    svc->resume();
    for (const service::Ticket& t : tickets) t.waitFor(std::chrono::seconds(120));
    svc->shutdown();
  } catch (const io::CrashError&) {
    out.crashed = true;
  }
  return out;
}

/// Enumerates every journal crash point of the burst. The journal file is
/// copied aside at the moment of death (the still-live service object
/// keeps appending while its destructor drains), and recovery runs from
/// that copy — exactly the bytes a rebooted machine would see.
void serviceCrashPoints(u64 seed, bool fast, DrillTotals& totals,
                        Fingerprint& fp) {
  const std::string dir = scratchDir("svc_burst", seed);
  const std::string jpath = dir + "/jobs.jnl";
  const std::string image = dir + "/jobs.crash-image.jnl";
  const u32 jobs = fast ? 2 : 4;
  const core::Config cfg = jobConfig();
  core::CompressorStream ref(cfg);

  std::vector<std::vector<f32>> fields;
  std::vector<std::vector<std::byte>> expected;
  for (u32 i = 0; i < jobs; ++i) {
    fields.push_back(datagen::generateF32("hacc", i, 2048));
    expected.push_back(
        ref.compress<f32>(std::span<const f32>(fields.back())).stream);
  }

  const io::CrashSite sites[] = {io::CrashSite::Write, io::CrashSite::Sync,
                                 io::CrashSite::Rename,
                                 io::CrashSite::DirSync};
  std::map<io::CrashSite, u64> points;
  for (io::CrashSite site : sites) {
    resetDir(dir);
    io::startCrashCounting(site, jpath);
    const BurstOutcome base = runServiceBurst(jpath, fields);
    points[site] = io::stopCrashCounting();
    check(!base.crashed, "service counting pass must not crash");
  }

  for (io::CrashSite site : sites) {
    const std::vector<io::CrashMode> modes =
        site == io::CrashSite::Write
            ? std::vector<io::CrashMode>{io::CrashMode::Tear,
                                         io::CrashMode::Drop}
            : std::vector<io::CrashMode>{io::CrashMode::Drop};
    std::fprintf(stderr, "  service site %s: %llu points\n", toString(site),
                 static_cast<unsigned long long>(points[site]));
    for (u64 op = 0; op < points[site]; ++op) {
      for (io::CrashMode mode : modes) {
        const std::string tag = "service crash(" +
                                std::string(toString(site)) + "," +
                                toString(mode) + "," + std::to_string(op) +
                                ")";
        resetDir(dir);
        io::CrashPlan plan;
        plan.seed = seed;
        plan.pathPattern = jpath;
        plan.site = site;
        plan.mode = mode;
        plan.triggerOp = op;
        io::installCrashPlan(plan);
        BurstOutcome out;
        {
          out = runServiceBurst(jpath, fields);
          // The image must be captured before anything else touches the
          // journal; runServiceBurst destroyed the service already (its
          // drain may have appended past the torn point — those bytes
          // are discarded at replay, exactly like a real crash).
          if (std::filesystem::exists(jpath)) {
            std::filesystem::copy_file(
                jpath, image,
                std::filesystem::copy_options::overwrite_existing);
          }
        }
        io::clearCrashPlan();
        check(io::crashPlanArmed() == false, tag + ": plan cleared");

        if (!std::filesystem::exists(image)) {
          // Death during the journal's own header creation: nothing was
          // acked, nothing to recover.
          check(out.ackedIds.empty(),
                tag + ": no job can be acked before the journal exists");
          ++totals.crashPoints;
          continue;
        }

        // Decode the image directly: every acked accept must be durable.
        io::ReplayResult replay;
        try {
          replay = io::replayJournal(image);
        } catch (const Error& e) {
          check(false, tag + ": crash image must replay: " + e.what());
          continue;
        }
        const service::JobJournalSummary summary =
            service::summarizeJobJournal(replay);
        std::set<u64> durableAccepts;
        for (const io::JournalRecord& rec : replay.records) {
          if (rec.type == service::kJobRecordAccept) {
            durableAccepts.insert(
                service::decodeJobAccept(ConstByteSpan(rec.payload)).jobId);
          }
        }
        for (u64 id : out.ackedIds) {
          check(durableAccepts.count(id) == 1,
                tag + ": acked accept " + std::to_string(id) + " is durable");
        }

        // Restart from the image: the constructor must replay exactly the
        // accepted-but-unresolved set, and every replayed job must finish
        // with the reference bytes.
        service::CompressionService svc(durableServiceConfig(image));
        const auto& replayed = svc.replayedJobs();
        check(replayed.size() == summary.pending.size(),
              tag + ": replay count matches the journal's pending set");
        svc.resume();
        for (const service::ReplayedJob& rj : replayed) {
          check(rj.ticket.waitFor(std::chrono::seconds(120)),
                tag + ": replayed job resolves");
          const service::JobResult& r = rj.ticket.result();
          check(r.outcome == service::Outcome::Completed,
                tag + ": replayed job completes");
          const usize idx = static_cast<usize>(rj.originalJobId - 1);
          check(idx < expected.size() &&
                    r.compressed.stream == expected[idx],
                tag + ": replayed output byte-identical");
          totals.serviceReplays += 1;
        }
        svc.shutdown();
        fp.mix(replayed.size());
        fp.mix(summary.accepts);
        fp.mix(summary.resolves);
        fp.mix(replay.torn);
        ++totals.crashPoints;
      }
    }
  }
  std::filesystem::remove_all(dir);
}

u64 drillOnce(u64 seed, bool fast, DrillTotals& totals) {
  Fingerprint fp;
  std::fprintf(stderr, "crash_drill: store leg...\n");
  storeDrill(seed, fast, totals, fp);
  std::fprintf(stderr, "crash_drill: service crafted-journal leg...\n");
  serviceCraftedJournal(seed, fast ? 2 : 3, totals, fp);
  std::fprintf(stderr, "crash_drill: service crash-point leg...\n");
  serviceCrashPoints(seed, fast, totals, fp);
  return fp.fp;
}

}  // namespace

int main(int argc, char** argv) {
  u64 seed = 20260809;
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fast") {
      fast = true;
    } else {
      std::fprintf(stderr, "usage: crash_drill [--seed N] [--fast]\n");
      return 2;
    }
  }

  std::printf("crash_drill: seed=%llu%s\n",
              static_cast<unsigned long long>(seed), fast ? " (fast)" : "");

  DrillTotals first, second;
  const u64 fp1 = drillOnce(seed, fast, first);
  const u64 fp2 = drillOnce(seed, fast, second);
  check(fp1 == fp2,
        "two same-seed drill runs produce bit-identical fingerprints");
  check(first.crashPoints == second.crashPoints,
        "two same-seed drill runs enumerate the same crash points");
  check(first.crashPoints > 0, "the drill enumerated crash points");
  check(first.tornTails > 0,
        "at least one crash point produced a torn tail the replay discarded");
  check(first.replayedRecords > 0,
        "at least one recovery replayed journal records");
  check(first.serviceReplays > 0,
        "at least one restarted service replayed a pending job");

  std::printf(
      "run: crash_points=%llu torn_tails=%llu replayed_records=%llu "
      "discarded_bytes=%llu service_replays=%llu fingerprint=%016llx\n",
      static_cast<unsigned long long>(first.crashPoints),
      static_cast<unsigned long long>(first.tornTails),
      static_cast<unsigned long long>(first.replayedRecords),
      static_cast<unsigned long long>(first.discardedBytes),
      static_cast<unsigned long long>(first.serviceReplays),
      static_cast<unsigned long long>(fp1));
  if (failures == 0) {
    std::printf("crash_drill: OK\n");
    return 0;
  }
  std::fprintf(stderr, "crash_drill: %d failure(s); replay with --seed %llu\n",
               failures, static_cast<unsigned long long>(seed));
  return 1;
}
