// fuzz_decode — seeded structured fuzzer for the decode surface.
//
// Builds a pool of valid streams (both format versions, both precisions,
// with and without checksums, tails, zero runs), then applies structured
// mutations — truncations at region boundaries, bit/byte flips aimed at
// the header / offset array / payload / footer, garbage extension — and
// drives both decode paths on every mutant:
//
//   strict  decompress()           must throw core::Error or succeed —
//                                  never crash, hang, or read out of
//                                  bounds (run under ASan/UBSan in CI);
//   salvage decompressResilient()  must never throw and must return a
//                                  self-consistent DecodeReport.
//
//   usage: fuzz_decode [iterations=500] [seed=1]
//
// Exit 0 when every mutant held the invariants; 1 otherwise, printing the
// (seed, iteration) needed to replay the failure.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compressor.hpp"

using namespace cuszp2;

namespace {

struct BaseStream {
  std::vector<std::byte> bytes;
  Precision precision;
};

template <FloatingPoint T>
std::vector<T> makeField(Rng& rng, usize n) {
  std::vector<T> data(n);
  f64 v = 0.0;
  for (usize i = 0; i < n; ++i) {
    // Smooth walk with occasional jumps and a zero run: exercises outlier
    // selection, dense blocks, and the zero-block memset path.
    if (i % 97 == 0) v = rng.uniform(-100.0, 100.0);
    v += rng.normal(0.0, 0.3);
    data[i] = (i > n / 2 && i < n / 2 + 200) ? T{} : static_cast<T>(v);
  }
  return data;
}

std::vector<BaseStream> makeBasePool(core::CompressorStream& codec) {
  Rng rng(0xF00DF00Dull);
  std::vector<BaseStream> pool;
  const usize sizes[] = {1, 31, 1024, 4096 + 17};
  for (const usize n : sizes) {
    for (const bool v2 : {false, true}) {
      for (const bool checksum : {false, true}) {
        core::Config cfg;
        cfg.absErrorBound = 1e-2;
        cfg.checksum = checksum;
        cfg.blockChecksums = v2;
        codec.reconfigure(cfg);
        const auto f32Field = makeField<f32>(rng, n);
        pool.push_back({codec.compress<f32>(f32Field).stream,
                        Precision::F32});
        const auto f64Field = makeField<f64>(rng, n);
        pool.push_back({codec.compress<f64>(f64Field).stream,
                        Precision::F64});
      }
    }
    // Format-v3 bases: mixed per-block selection (Auto) and a pinned
    // Huffman stream, so mutants cover 4-byte descriptors, the shared
    // dictionary section and every pipeline's payload structure.
    for (const core::PipelineMode mode :
         {core::PipelineMode::Auto, core::PipelineMode::Huffman}) {
      core::Config cfg;
      cfg.absErrorBound = 1e-2;
      cfg.pipeline = mode;
      codec.reconfigure(cfg);
      const auto f32Field = makeField<f32>(rng, n);
      pool.push_back({codec.compress<f32>(f32Field).stream,
                      Precision::F32});
      const auto f64Field = makeField<f64>(rng, n);
      pool.push_back({codec.compress<f64>(f64Field).stream,
                      Precision::F64});
    }
  }
  return pool;
}

/// Structured mutation: pick a region-aware corruption. Returns a
/// human-readable description for failure replay.
std::string mutate(Rng& rng, std::vector<std::byte>& s) {
  const auto flipIn = [&](usize begin, usize end, const char* name) {
    if (begin >= end || end > s.size()) {
      begin = 0;
      end = s.size();
    }
    const usize pos = begin + rng.uniformInt(end - begin);
    s[pos] ^= static_cast<std::byte>(1u << rng.uniformInt(8));
    return std::string("bit flip in ") + name + " at byte " +
           std::to_string(pos);
  };

  // Region boundaries from the (still valid) header; fall back to whole-
  // stream positions if it no longer parses.
  usize offsetsBegin = 0;
  usize payloadBegin = 0;
  usize footerBegin = s.size();
  usize dictBegin = 0;
  u64 numBlocks = 0;
  bool isV3 = false;
  if (const auto h = core::StreamHeader::tryParse(s)) {
    offsetsBegin = core::StreamHeader::offsetsBegin();
    payloadBegin = h->payloadBegin();
    footerBegin = s.size() - h->footerBytes();
    dictBegin = h->dictBegin();
    numBlocks = h->numBlocks();
    isV3 = h->version >= core::kFormatVersionV3;
  }

  switch (rng.uniformInt(11)) {
    case 0: {  // truncate at a uniformly random point
      const usize keep = rng.uniformInt(s.size() + 1);
      s.resize(keep);
      return "truncate to " + std::to_string(keep);
    }
    case 1: {  // truncate at/around a region boundary
      const usize anchors[] = {offsetsBegin, payloadBegin, footerBegin};
      usize at = anchors[rng.uniformInt(3)];
      if (rng.uniformInt(2) == 0 && at > 0) at -= 1;
      s.resize(std::min(at, s.size()));
      return "truncate at boundary " + std::to_string(s.size());
    }
    case 2:
      return flipIn(0, offsetsBegin, "header");
    case 3:
      return flipIn(offsetsBegin, payloadBegin, "offset array");
    case 4:
      return flipIn(payloadBegin, footerBegin, "payload");
    case 5:
      return flipIn(footerBegin, s.size(), "footer");
    case 6: {  // burst: several byte rewrites in one area
      const usize pos = rng.uniformInt(s.size());
      const usize len = std::min<usize>(s.size() - pos,
                                        1 + rng.uniformInt(16));
      for (usize i = 0; i < len; ++i) {
        s[pos + i] = static_cast<std::byte>(rng.uniformInt(256));
      }
      return "burst rewrite at " + std::to_string(pos);
    }
    case 7: {  // append garbage (framing damage for v2/v3)
      const usize extra = 1 + rng.uniformInt(64);
      for (usize i = 0; i < extra; ++i) {
        s.push_back(static_cast<std::byte>(rng.uniformInt(256)));
      }
      return "append " + std::to_string(extra) + " bytes";
    }
    case 8: {  // v3: corrupt one descriptor's pipeline-id byte
      if (!isV3 || numBlocks == 0) {
        return flipIn(offsetsBegin, payloadBegin, "offset array");
      }
      const usize blk = rng.uniformInt(static_cast<usize>(numBlocks));
      const usize pos = offsetsBegin + blk * core::kV3DescBytes;
      s[pos] = static_cast<std::byte>(rng.uniformInt(256));
      return "pipeline id rewrite in descriptor " + std::to_string(blk);
    }
    case 9: {  // v3: damage or truncate the dictionary section
      if (!isV3 || dictBegin >= payloadBegin) {
        return flipIn(0, offsetsBegin, "header");
      }
      if (rng.uniformInt(2) == 0) {
        const usize keep =
            dictBegin + rng.uniformInt(payloadBegin - dictBegin);
        s.resize(keep);
        return "truncate inside dictionary to " + std::to_string(keep);
      }
      return flipIn(dictBegin, payloadBegin, "dictionary");
    }
    default: {  // v3: cross-pipeline splice — copy one descriptor over
                // another, so its payload bytes are parsed as the wrong
                // pipeline at the wrong size
      if (!isV3 || numBlocks < 2) {
        return flipIn(payloadBegin, footerBegin, "payload");
      }
      const usize src = rng.uniformInt(static_cast<usize>(numBlocks));
      const usize dst = rng.uniformInt(static_cast<usize>(numBlocks));
      for (usize b = 0; b < core::kV3DescBytes; ++b) {
        s[offsetsBegin + dst * core::kV3DescBytes + b] =
            s[offsetsBegin + src * core::kV3DescBytes + b];
      }
      return "descriptor splice " + std::to_string(src) + " -> " +
             std::to_string(dst);
    }
  }
}

/// Runs both decode paths over one mutant; returns an empty string when
/// all invariants held, else a description of the violation.
template <FloatingPoint T>
std::string driveTyped(core::CompressorStream& codec, ConstByteSpan s) {
  try {
    (void)codec.decompress<T>(s);
  } catch (const Error&) {
    // Rejection is a correct strict-mode outcome.
  }

  const auto salvaged = codec.decompressResilient<T>(s, T{-1});
  const auto& rep = salvaged.report;
  if (!rep.headerOk) {
    if (rep.headerError.empty()) return "headerOk=false without an error";
    if (!salvaged.data.empty()) return "data not empty on header failure";
    return "";
  }
  if (rep.goodBlocks + rep.badBlocks != rep.totalBlocks) {
    return "block counts do not add up";
  }
  if (rep.verdicts.size() != rep.totalBlocks) return "verdict count wrong";
  u64 bad = 0;
  for (const auto v : rep.verdicts) {
    if (v != core::BlockVerdict::Good) ++bad;
  }
  if (bad != rep.badBlocks) return "verdicts disagree with badBlocks";
  if (rep.badBlocks == 0 &&
      rep.firstCorruptOffset != core::DecodeReport::kNoCorruption) {
    return "firstCorruptOffset set with no bad blocks";
  }
  if (rep.badBlocks > 0 &&
      rep.firstCorruptOffset == core::DecodeReport::kNoCorruption) {
    return "firstCorruptOffset missing with bad blocks";
  }
  return "";
}

std::string drive(core::CompressorStream& codec, const BaseStream& base,
                  ConstByteSpan mutant) {
  return base.precision == Precision::F32
             ? driveTyped<f32>(codec, mutant)
             : driveTyped<f64>(codec, mutant);
}

}  // namespace

int main(int argc, char** argv) {
  const u64 iterations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const u64 seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  core::CompressorStream codec(core::Config{.absErrorBound = 1e-2});
  const auto pool = makeBasePool(codec);
  codec.reconfigure(core::Config{.absErrorBound = 1e-2});

  u64 strictRejected = 0;
  u64 salvageDamaged = 0;
  for (u64 i = 0; i < iterations; ++i) {
    Rng rng(SplitMix64(seed ^ (i * 0x9E3779B97F4A7C15ull)).next());
    const BaseStream& base = pool[rng.uniformInt(pool.size())];
    std::vector<std::byte> mutant = base.bytes;
    const std::string what = mutate(rng, mutant);

    const std::string violation = drive(codec, base, mutant);
    if (!violation.empty()) {
      std::fprintf(stderr,
                   "fuzz_decode FAILED: %s (mutation: %s, seed %llu, "
                   "iteration %llu)\n",
                   violation.c_str(), what.c_str(),
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }

    // Tally outcomes for the summary line (coverage sanity, not pass/fail).
    try {
      if (base.precision == Precision::F32) {
        (void)codec.decompress<f32>(mutant);
      } else {
        (void)codec.decompress<f64>(mutant);
      }
    } catch (const Error&) {
      ++strictRejected;
    }
    const bool clean =
        base.precision == Precision::F32
            ? codec.decompressResilient<f32>(mutant).report.clean()
            : codec.decompressResilient<f64>(mutant).report.clean();
    if (!clean) ++salvageDamaged;
  }

  std::printf("fuzz_decode: %llu mutants ok (%llu strict-rejected, %llu "
              "salvage-flagged, seed %llu)\n",
              static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(strictRejected),
              static_cast<unsigned long long>(salvageDamaged),
              static_cast<unsigned long long>(seed));
  return 0;
}
