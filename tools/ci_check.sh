#!/usr/bin/env bash
# Tier-1 verification, twice:
#   1. Release         — the configuration the figures and perf numbers use.
#   2. Debug + ASan/UBSan — catches lifetime bugs in the arena / stream
#      reuse paths that a Release run would silently survive.
#
# Usage: tools/ci_check.sh [jobs]
# Build trees land in build-ci-release/ and build-ci-asan/ under the repo
# root so the default build/ directory is left untouched.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${1:-$(nproc)}"

run_config() {
  local name="$1"
  shift
  local build_dir="${repo_root}/build-ci-${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${build_dir}" -S "${repo_root}" "$@"
  echo "==== [${name}] build ===="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==== [${name}] ctest ===="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config asan -DCMAKE_BUILD_TYPE=Debug -DCUSZP2_SANITIZE=ON

echo "==== [asan] fuzz_decode (500 structured mutants) ===="
"${repo_root}/build-ci-asan/tools/fuzz_decode" 500 1

echo "==== ci_check: all configurations passed ===="
