#!/usr/bin/env bash
# Tier-1 verification, twice:
#   1. Release         — the configuration the figures and perf numbers use.
#      Runs the full suite (fast + property + bench + cas + durability
#      labels), then the
#      perf-regression harness, which refreshes BENCH_perf.json at the
#      repo root and soft-fails (warns) on modelled-throughput drift.
#   2. Debug + ASan/UBSan — catches lifetime bugs in the arena / stream
#      reuse paths that a Release run would silently survive. Restricted
#      to the fast label: the property sweeps re-run identical codec
#      paths and would dominate sanitizer wall time.
#
# Usage: tools/ci_check.sh [jobs]
# Build trees land in build-ci-release/ and build-ci-asan/ under the repo
# root so the default build/ directory is left untouched.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${1:-$(nproc)}"

run_config() {
  local name="$1"
  local labels="$2"
  shift 2
  local build_dir="${repo_root}/build-ci-${name}"
  echo "==== [${name}] configure ===="
  cmake -B "${build_dir}" -S "${repo_root}" "$@"
  echo "==== [${name}] build ===="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==== [${name}] ctest (${labels:-all labels}) ===="
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}" ${labels})
}

run_config release "" -DCMAKE_BUILD_TYPE=Release

# The SIMD and scalar kernels must be byte-identical drop-ins; run the
# fast label under both dispatch modes so a divergence fails CI rather
# than only the targeted sweep in test_simd.
echo "==== [release] ctest -L fast, CUSZP2_SIMD=scalar ===="
(cd "${repo_root}/build-ci-release" &&
  CUSZP2_SIMD=scalar ctest --output-on-failure -j "${jobs}" -L fast)
echo "==== [release] ctest -L fast, CUSZP2_SIMD=native ===="
(cd "${repo_root}/build-ci-release" &&
  CUSZP2_SIMD=native ctest --output-on-failure -j "${jobs}" -L fast)

# Format-v3 CLI smoke: a shaped field through the auto and pinned-huffman
# pipelines end to end (compress, info, verify) in the shipped binary.
# Guards the --pipeline plumbing and the v3 wire paths as users reach
# them, not only as the unit suites do.
echo "==== [release] cuszp2 --pipeline auto/huffman smoke ===="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
python3 - "${smoke_dir}/in.f32" <<'PYEOF'
import struct, sys
# Alternating zero / skewed-noise-with-spikes blocks: shaped so the auto
# selector mixes pipelines and pinned huffman has residuals worth coding.
vals, q = [], 0
for b in range(64):
    for i in range(32):
        if b % 2:
            q += (i * 7919) % 3 - 1 + (37 if i == 10 else 0) \
                 - (53 if i == 20 else 0)
        vals.append(q * 0.02)
open(sys.argv[1], "wb").write(struct.pack("<%df" % len(vals), *vals))
PYEOF
for p in auto huffman; do
  "${repo_root}/build-ci-release/tools/cuszp2" compress \
    "${smoke_dir}/in.f32" "${smoke_dir}/out-${p}.czp2" \
    --abs 0.01 --pipeline "${p}"
  "${repo_root}/build-ci-release/tools/cuszp2" info \
    "${smoke_dir}/out-${p}.czp2"
  "${repo_root}/build-ci-release/tools/cuszp2" verify \
    "${smoke_dir}/in.f32" "${smoke_dir}/out-${p}.czp2"
done

# The ASan leg pins scalar: the sanitizer instruments the scalar loops
# (the semantic reference), and the vector intrinsics would only slow the
# already-expensive pass without adding coverage ASan can act on.
CUSZP2_SIMD=scalar \
  run_config asan "-L fast" -DCMAKE_BUILD_TYPE=Debug -DCUSZP2_SANITIZE=ON

# The pipeline label (selector, per-block wire framing, mixed-stream
# salvage) is cheap and touches fresh v3 decode paths — run it under the
# sanitizer too, not only in the release pass above.
echo "==== [asan] ctest -L pipeline ===="
(cd "${repo_root}/build-ci-asan" &&
  ctest --output-on-failure -j "${jobs}" -L pipeline)

# The cas label (content-addressed store: dedup refcounts, GC races,
# compaction round-trip proofs, chaos drill) runs in the release full
# pass above; repeat it explicitly there so a red cas build is named in
# the log, and run it under the sanitizer — the refcount/GC paths are
# exactly where lifetime bugs hide from a Release run.
echo "==== [release] ctest -L cas ===="
(cd "${repo_root}/build-ci-release" &&
  ctest --output-on-failure -j "${jobs}" -L cas)
echo "==== [asan] ctest -L cas ===="
(cd "${repo_root}/build-ci-asan" &&
  ctest --output-on-failure -j "${jobs}" -L cas)

echo "==== [asan] fuzz_decode (500 structured mutants, v1/v2/v3 pool) ===="
"${repo_root}/build-ci-asan/tools/fuzz_decode" 500 1

# The soak already runs inside the asan ctest pass (test_service carries
# the fast label); the explicit invocation keeps a red service build from
# hiding inside a 600-test wall of output.
echo "==== [asan] service soak (4 tenants x 200 jobs) ===="
"${repo_root}/build-ci-asan/tests/test_service" \
  --gtest_filter='ServiceSoak.*'

# Seeded chaos drill: deterministic fault schedule (stalls, wedges, bit
# flips, aborts, arena exhaustion) against a live multi-tenant service.
# Every ticket must resolve, healthy jobs byte-identically, and the
# recovery counters must match across two in-process runs. Release runs
# the full schedule; the sanitizer build runs the trimmed one.
echo "==== [release] chaos soak (seed 20260805) ===="
"${repo_root}/build-ci-release/tools/chaos_soak" --seed 20260805
echo "==== [asan] chaos soak (seed 20260805, fast) ===="
"${repo_root}/build-ci-asan/tools/chaos_soak" --seed 20260805 --fast

# Cluster failover soak: 4 shards x 8 tenants under a seeded shard-kill
# schedule. The drill hard-fails unless every ticket resolves within its
# timeout, every completed job is byte-identical to the fault-free serial
# run, the replicated archive repairs a lost primary bit-exactly, and the
# full ClusterStats snapshot matches across two same-seed runs. Release
# runs two seeds to vary the kill pattern; the sanitizer leg runs the
# trimmed schedule.
echo "==== [release] cluster soak (seed 20260805) ===="
"${repo_root}/build-ci-release/tools/chaos_soak" --cluster --seed 20260805
echo "==== [release] cluster soak (seed 777) ===="
"${repo_root}/build-ci-release/tools/chaos_soak" --cluster --seed 777
echo "==== [asan] cluster soak (seed 20260805, fast) ===="
"${repo_root}/build-ci-asan/tools/chaos_soak" --cluster --seed 20260805 --fast

# CAS soak: seeded put/get/erase/gc churn against the content-addressed
# store with compaction sweeps that abort mid-migration on a seeded
# schedule. The drill hard-fails unless every live object decodes back
# byte- (or element-) exactly, no stale compaction commit lands, the
# sealed save/load round trip serves identical bytes, and the full
# StoreStats + CompactionStats snapshot matches across two same-seed
# runs. Two seeds in release vary the kill pattern; ASan runs trimmed.
echo "==== [release] cas soak (seed 20260805) ===="
"${repo_root}/build-ci-release/tools/chaos_soak" --cas --seed 20260805
echo "==== [release] cas soak (seed 777) ===="
"${repo_root}/build-ci-release/tools/chaos_soak" --cas --seed 777
echo "==== [asan] cas soak (seed 20260805, fast) ===="
"${repo_root}/build-ci-asan/tools/chaos_soak" --cas --seed 20260805 --fast

# Durability label (journal wire format, torn tails, crash-plan purity,
# store/service/cluster recovery units) runs in the release full pass
# above; name it explicitly so a red durability build stands out, and
# repeat it under the sanitizer — replay walks attacker-shaped (torn,
# zero-filled, garbage) byte streams, exactly where ASan earns its keep.
echo "==== [release] ctest -L durability ===="
(cd "${repo_root}/build-ci-release" &&
  ctest --output-on-failure -j "${jobs}" -L durability)
echo "==== [asan] ctest -L durability ===="
(cd "${repo_root}/build-ci-asan" &&
  ctest --output-on-failure -j "${jobs}" -L durability)

# Crash drill: enumerate EVERY injectable crash point (write/sync/rename/
# dirsync on the store and job journals) over a scripted churn workload,
# restart from the torn disk image, and hard-fail unless recovery passes
# checkInvariants + verifyAll with every acknowledged op intact and the
# run fingerprint bit-identical across two same-seed passes. Two seeds in
# release vary the tear bytes; ASan runs the trimmed point set.
echo "==== [release] crash drill (seed 20260809) ===="
"${repo_root}/build-ci-release/tools/crash_drill" --seed 20260809
echo "==== [release] crash drill (seed 4242) ===="
"${repo_root}/build-ci-release/tools/crash_drill" --seed 4242
echo "==== [asan] crash drill (seed 20260809, fast) ===="
"${repo_root}/build-ci-asan/tools/crash_drill" --seed 20260809 --fast

echo "==== [release] perf_regression -> BENCH_perf.json ===="
(cd "${repo_root}" && "${repo_root}/build-ci-release/bench/perf_regression" \
  "${repo_root}/BENCH_perf.json")

# Every scenario row must declare a wall-clock budget: a row without one
# escapes the perf.wall_budget soft-warn entirely, so a missing budget is
# a hard failure (new scenarios must add a kWallBudgets entry).
echo "==== BENCH_perf.json wall-budget completeness ===="
python3 - "${repo_root}/BENCH_perf.json" <<'PYEOF'
import json, sys
rows = json.load(open(sys.argv[1]))
missing = [r["name"] for r in rows
           if r.get("wall_budget_ms", 0) <= 0 or "wall_ms_median" not in r]
if missing:
    sys.exit("ci_check: rows missing wall_ms_median budget: %s"
             % ", ".join(missing))
print("all %d rows carry wall budgets" % len(rows))
PYEOF

echo "==== ci_check: all configurations passed ===="
