// chaos_soak — seeded chaos drill for the compression service.
//
// Runs a multi-tenant job mix (four healthy tenants over synthetic
// paper datasets, alternating compress/decompress) under a
// SeededChaosSchedule that exercises every injectable fault mode —
// bit flips, block aborts, launch stalls, pool-worker wedges, and
// scratch-arena exhaustion — plus one "poison" tenant whose decompress
// payloads are pre-corrupted so every strict decode fails. Asserts the
// service's chaos contract:
//
//   * every submitted ticket resolves with a typed Outcome;
//   * non-degraded outputs are byte-identical to a fault-free serial
//     CompressorStream run with the same Config;
//   * poison jobs resolve Degraded with a non-clean DecodeReport, and
//     the circuit breaker opens for (only) the poison tenant — a second
//     submission wave shows poison rejected CircuitOpen while healthy
//     tenants still complete;
//   * watchdog recoveries equal the schedule's stall+wedge injections
//     (replayed analytically from the seed), and the whole recovery
//     counter tuple is identical across two runs of the same seed.
//
// With --cluster the drill runs the shard-level analogue instead: an
// 8-tenant mix over a 4-shard CompressionCluster under a seeded
// ShardChaosSchedule. Kills land while every shard is paused (the
// deterministic drill recipe), so the queued/running partition is exact
// and the run asserts:
//
//   * every ticket resolves with a typed Outcome within the timeout;
//   * every job completes and its output is byte-identical to the
//     fault-free serial run — failover resumed the work on a survivor,
//     it did not re-derive different bytes;
//   * a replicated archive self-heals single-chunk damage, fails a read
//     over past an unrepairable copy, and read-repairs the set;
//   * the full ClusterStats snapshot — kills, failovers, steals, archive
//     counters — is identical across two runs of the same seed.
//
// With --cas the drill soaks the content-addressed block store instead:
// a seeded schedule of foreground puts/gets/erases/gc over dedup-heavy
// content (repeated timesteps across tenants) interleaved with
// CompactionWorker sweeps whose chaosAbort hook kills sweeps between the
// re-encode and the commit (the mid-compaction kill window), plus
// deliberate stale-commit races (scan, foreground delete, commit). The
// run asserts:
//
//   * no lost blocks: after every round each live object reads back with
//     the content the shadow model expects (raw bytes for blobs, the
//     decompressed element hash for streams — migration may change the
//     wire bytes but never the content), erased keys stay gone, and
//     BlockStore::checkInvariants holds;
//   * a compaction kill never mutates the store (old object intact);
//   * a stale commit (object deleted/rewritten after the scan) is
//     refused;
//   * the final StoreStats + CompactionStats tuples, and a save/load
//     round trip of the final store, are identical across two runs of
//     the same seed.
//
//   usage: chaos_soak [--seed N] [--jobs N] [--fast] [--cluster] [--cas]
//
// Exit 0 when every invariant held; 1 otherwise, printing the seed
// needed to replay the failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <filesystem>
#include <map>

#include "cas/block_store.hpp"
#include "cas/compaction.hpp"
#include "cluster/cluster.hpp"
#include "common/hash128.hpp"
#include "common/rng.hpp"
#include "core/stream.hpp"
#include "datagen/fields.hpp"
#include "io/archive.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"

using namespace cuszp2;

namespace {

struct JobSpec {
  std::string tenant;
  service::JobKind kind = service::JobKind::Compress;
  std::vector<f32> field;               // compress input
  std::vector<std::byte> stream;        // decompress input
  std::vector<std::byte> expected;      // fault-free reference output
  bool poison = false;
};

struct RunCounters {
  u64 completed = 0, failed = 0, degraded = 0, abandoned = 0;
  u64 recoveries = 0, retries = 0, retriesExhausted = 0;
  u64 breakerOpens = 0, chaosInjected = 0, rejectedCircuitOpen = 0;
  u64 streamFaultsDetected = 0, streamFaultRelaunches = 0;

  bool operator==(const RunCounters&) const = default;
};

int failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++failures;
}

core::Config jobConfig() {
  core::Config cfg;
  cfg.absErrorBound = 1e-3;
  cfg.checksum = true;
  cfg.blockChecksums = true;
  cfg.faultRetries = 2;
  return cfg;
}

std::vector<std::byte> toBytes(const std::vector<f32>& v) {
  std::vector<std::byte> bytes(v.size() * sizeof(f32));
  if (!bytes.empty()) std::memcpy(bytes.data(), v.data(), bytes.size());
  return bytes;
}

/// The deterministic job mix, in submission order (job ids are assigned
/// sequentially at submission, so spec i gets service job id i + 1).
std::vector<JobSpec> buildSpecs(u32 jobsPerTenant, u32 poisonJobs) {
  struct Tenant {
    const char* name;
    const char* dataset;
  };
  const Tenant tenants[] = {{"climate", "cesm_atm"},
                            {"cosmo", "hacc"},
                            {"fusion", "jetin"},
                            {"seismic", "scale"}};
  core::CompressorStream ref(jobConfig());
  std::vector<JobSpec> specs;
  for (u32 j = 0; j < jobsPerTenant; ++j) {
    for (const Tenant& t : tenants) {
      const u32 fields = datagen::datasetInfo(t.dataset).numFields;
      JobSpec spec;
      spec.tenant = t.name;
      spec.field =
          datagen::generateF32(t.dataset, j % fields, 2048 + 1024 * (j % 3));
      const core::Compressed ref32 = ref.compress<f32>(spec.field);
      if (j % 2 == 0) {
        spec.kind = service::JobKind::Compress;
        spec.expected = ref32.stream;
      } else {
        spec.kind = service::JobKind::Decompress;
        spec.stream = ref32.stream;
        spec.expected = toBytes(ref.decompress<f32>(ref32.stream).data);
      }
      specs.push_back(std::move(spec));
    }
  }
  for (u32 j = 0; j < poisonJobs; ++j) {
    JobSpec spec;
    spec.tenant = "poison";
    spec.kind = service::JobKind::Decompress;
    spec.poison = true;
    const auto field = datagen::generateF32("cesm_atm", j % 33, 3072);
    spec.stream = ref.compress<f32>(field).stream;
    // Smash payload bytes in the back half (the header stays intact so
    // the degraded decoder can still parse the frame and quarantine).
    const usize half = spec.stream.size() / 2;
    for (u32 k = 0; k < 8; ++k) {
      spec.stream[half + (k * 31) % half] ^= std::byte{0xA5};
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

service::ServiceConfig serviceConfig(u64 seed) {
  service::ChaosConfig chaos;
  chaos.seed = seed;
  chaos.stallTicks = 450;  // >> watchdog timeout: always recovered first
  chaos.wedgeTicks = 450;
  chaos.exemptTenant = "poison";  // poison carries its own corruption
  service::SeededChaosSchedule schedule(chaos);

  service::ServiceConfig cfg;
  cfg.workers = 3;
  cfg.maxBatchJobs = 1;  // deterministic: no coalescing, 1 job = 1 dispatch
  cfg.startPaused = true;
  cfg.watchdog.pollMillis = 5;
  cfg.watchdog.minTimeoutMillis = 150;
  cfg.watchdog.maxRecoveries = 1;
  cfg.retry.maxAttempts = 2;
  cfg.retry.backoffBaseMillis = 1;
  cfg.retry.backoffCapMillis = 8;
  cfg.retry.jitterSeed = seed;
  cfg.breaker.threshold = 4;
  cfg.breaker.cooldownMillis = 10 * 60 * 1000;  // stays open for the drill
  cfg.degradedDecode = true;
  cfg.chaosHook = schedule.hook();
  return cfg;
}

/// Replays the chaos schedule analytically: how many first attempts get
/// tagged with each mode, given the submission-order job ids.
struct Forecast {
  u64 injected = 0;
  u64 stallsAndWedges = 0;
  u64 arenaFaults = 0;
};

Forecast forecast(u64 seed, const std::vector<JobSpec>& specs) {
  service::SeededChaosSchedule schedule(
      [&] {
        service::ChaosConfig c;
        c.seed = seed;
        c.stallTicks = 450;
        c.wedgeTicks = 450;
        c.exemptTenant = "poison";
        return c;
      }());
  Forecast f;
  for (usize i = 0; i < specs.size(); ++i) {
    service::ChaosJobInfo info;
    info.jobId = i + 1;
    info.tenant = specs[i].tenant;
    info.kind = specs[i].kind;
    info.attempt = 0;
    const service::ChaosFault fault = schedule.decide(info);
    using Mode = service::ChaosFault::Mode;
    if (fault.mode == Mode::None) continue;
    ++f.injected;
    if (fault.mode == Mode::Stall || fault.mode == Mode::Wedge) {
      ++f.stallsAndWedges;
    }
    if (fault.mode == Mode::ArenaExhaust) ++f.arenaFaults;
  }
  return f;
}

RunCounters runOnce(u64 seed, const std::vector<JobSpec>& specs) {
  service::CompressionService svc(serviceConfig(seed));
  const core::Config cfg = jobConfig();

  std::vector<service::Ticket> tickets;
  tickets.reserve(specs.size());
  u32 poisonJobs = 0;
  for (const JobSpec& spec : specs) {
    service::SubmitResult submitted =
        spec.kind == service::JobKind::Compress
            ? svc.submitCompress<f32>(spec.tenant,
                                      std::span<const f32>(spec.field), cfg)
            : svc.submitDecompress(spec.tenant, spec.stream, cfg);
    check(submitted.accepted(), "wave-1 submission accepted");
    tickets.push_back(submitted.ticket);
    if (spec.poison) ++poisonJobs;
  }
  svc.resume();

  // Contract #1: every ticket resolves (typed outcome, bounded time).
  for (usize i = 0; i < tickets.size(); ++i) {
    check(tickets[i].waitFor(std::chrono::seconds(120)),
          "ticket " + std::to_string(i + 1) + " resolves");
  }

  // Contract #2: byte identity for non-degraded work; quarantine for
  // poison.
  for (usize i = 0; i < tickets.size(); ++i) {
    if (!tickets[i].poll()) continue;  // already reported above
    const service::JobResult& r = tickets[i].result();
    const JobSpec& spec = specs[i];
    const std::string tag =
        spec.tenant + " job " + std::to_string(i + 1);
    if (spec.poison) {
      check(r.outcome == service::Outcome::Degraded,
            tag + " resolves Degraded (got " +
                std::string(toString(r.outcome)) + ")");
      check(!r.decodeReport.clean(), tag + " carries a non-clean report");
      check(r.decodeReport.badBlocks > 0, tag + " quarantined blocks");
      continue;
    }
    check(r.outcome == service::Outcome::Completed,
          tag + " completes (got " + std::string(toString(r.outcome)) +
              (r.error.empty() ? "" : ": " + r.error) + ")");
    const std::vector<std::byte>& got =
        spec.kind == service::JobKind::Compress ? r.compressed.stream
                                                : r.decompressed;
    check(got == spec.expected,
          tag + " output byte-identical to the fault-free serial run");
  }

  // Contract #4 (part 1): wave-1 counters are the predicted,
  // seed-determined values. Snapshot before wave 2 — its jobs draw their
  // own chaos decisions, which the analytic replay does not cover.
  const service::ServiceStats wave1 = svc.stats();
  const Forecast fc = forecast(seed, specs);
  check(wave1.failed == 0, "no wave-1 job failed outright");
  check(wave1.degraded == poisonJobs, "every poison job degraded");
  check(wave1.chaosInjected == fc.injected,
        "chaos injections match the schedule replay (" +
            std::to_string(wave1.chaosInjected) + " vs " +
            std::to_string(fc.injected) + ")");
  check(wave1.watchdogRecoveries == fc.stallsAndWedges,
        "watchdog recoveries == injected stalls+wedges (" +
            std::to_string(wave1.watchdogRecoveries) + " vs " +
            std::to_string(fc.stallsAndWedges) + ")");
  check(wave1.retries == fc.arenaFaults + poisonJobs,
        "service retries == arena faults + poison strict-decode failures (" +
            std::to_string(wave1.retries) + " vs " +
            std::to_string(fc.arenaFaults + poisonJobs) + ")");
  check(wave1.retriesExhausted == poisonJobs,
        "only poison jobs exhaust their attempts");
  check(wave1.breakerOpens == 1, "the breaker opened exactly once");

  // Contract #3: the breaker isolates exactly the poison tenant.
  check(svc.breakerState("poison") == service::BreakerState::Open,
        "poison breaker open after wave 1");
  for (const char* t : {"climate", "cosmo", "fusion", "seismic"}) {
    check(svc.breakerState(t) == service::BreakerState::Closed,
          std::string(t) + " breaker stays closed");
  }
  service::SubmitResult poisoned =
      svc.submitDecompress("poison", specs.back().stream, cfg);
  check(!poisoned.accepted() &&
            poisoned.reason == service::RejectReason::CircuitOpen,
        "wave-2 poison submission rejected circuit-open");
  std::vector<service::Ticket> wave2;
  for (const JobSpec& spec : specs) {
    if (spec.poison || spec.kind != service::JobKind::Compress) continue;
    service::SubmitResult submitted = svc.submitCompress<f32>(
        spec.tenant, std::span<const f32>(spec.field), cfg);
    check(submitted.accepted(), "wave-2 healthy submission accepted");
    if (submitted.accepted()) wave2.push_back(submitted.ticket);
    break;  // one job per wave is enough to show the lanes stay open
  }
  for (const service::Ticket& t : wave2) {
    check(t.waitFor(std::chrono::seconds(60)) &&
              t.result().outcome == service::Outcome::Completed,
          "wave-2 healthy job completes while poison is shed");
  }

  svc.shutdown();

  // Contract #4 (part 2): the full counter tuple — wave 2 included — must
  // reproduce bit-for-bit across runs of the same seed (checked in main).
  const service::ServiceStats stats = svc.stats();
  check(stats.failed == 0, "no job failed outright");
  check(stats.abandoned == 0, "no job was abandoned");
  check(stats.rejectedCircuitOpen == 1,
        "exactly the wave-2 poison submission was shed");

  RunCounters c;
  c.completed = stats.completed;
  c.failed = stats.failed;
  c.degraded = stats.degraded;
  c.abandoned = stats.abandoned;
  c.recoveries = stats.watchdogRecoveries;
  c.retries = stats.retries;
  c.retriesExhausted = stats.retriesExhausted;
  c.breakerOpens = stats.breakerOpens;
  c.chaosInjected = stats.chaosInjected;
  c.rejectedCircuitOpen = stats.rejectedCircuitOpen;
  c.streamFaultsDetected = stats.streamFaultsDetected;
  c.streamFaultRelaunches = stats.streamFaultRelaunches;
  return c;
}

// ---------------------------------------------------------------------
// --cluster mode

/// 8 healthy tenants, alternating compress/decompress, with fault-free
/// serial reference outputs. No poison tenant: in the cluster drill the
/// chaos is shard kills, not kernel faults.
std::vector<JobSpec> buildClusterSpecs(u32 jobsPerTenant) {
  struct Tenant {
    const char* name;
    const char* dataset;
  };
  const Tenant tenants[] = {
      {"climate", "cesm_atm"}, {"cosmo", "hacc"},  {"fusion", "jetin"},
      {"seismic", "scale"},    {"weather", "cesm_atm"}, {"astro", "hacc"},
      {"plasma", "jetin"},     {"geo", "scale"}};
  core::CompressorStream ref(jobConfig());
  std::vector<JobSpec> specs;
  for (u32 j = 0; j < jobsPerTenant; ++j) {
    for (const Tenant& t : tenants) {
      const u32 fields = datagen::datasetInfo(t.dataset).numFields;
      JobSpec spec;
      spec.tenant = t.name;
      spec.field = datagen::generateF32(t.dataset, j % fields,
                                        2048 + 1024 * (j % 3));
      const core::Compressed ref32 = ref.compress<f32>(spec.field);
      if (j % 2 == 0) {
        spec.kind = service::JobKind::Compress;
        spec.expected = ref32.stream;
      } else {
        spec.kind = service::JobKind::Decompress;
        spec.stream = ref32.stream;
        spec.expected = toBytes(ref.decompress<f32>(ref32.stream).data);
      }
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

struct ClusterRun {
  cluster::ClusterStats stats;
  std::vector<service::Outcome> outcomes;
  std::vector<u32> shards;
  std::vector<std::vector<std::byte>> outputs;

  bool operator==(const ClusterRun&) const = default;
};

ClusterRun runClusterOnce(u64 seed, const std::vector<JobSpec>& specs) {
  cluster::ClusterConfig cfg;
  cfg.shards = 4;
  cfg.replicas = 2;
  cfg.minShardsUp = 2;
  cfg.shard.workers = 1;
  cfg.shard.maxBatchJobs = 1;  // deterministic: 1 job = 1 dispatch
  cfg.startPaused = true;
  cluster::ShardChaosConfig chaos;
  chaos.seed = seed;
  chaos.killRate = 0.5;
  chaos.degradeRate = 0.2;
  cfg.shardChaos = cluster::ShardChaosSchedule(chaos).hook();
  cluster::CompressionCluster cl(cfg);
  const core::Config jobCfg = jobConfig();

  std::vector<cluster::ClusterTicket> tickets;
  tickets.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    cluster::ClusterSubmitResult submitted =
        spec.kind == service::JobKind::Compress
            ? cl.submitCompress<f32>(
                  spec.tenant, std::span<const f32>(spec.field), jobCfg)
            : cl.submitDecompress(spec.tenant, ConstByteSpan(spec.stream),
                                  jobCfg);
    check(submitted.accepted(), "cluster submission accepted");
    tickets.push_back(submitted.ticket);
  }

  // Seeded kill schedule while paused: the deterministic drill recipe.
  for (int beat = 0; beat < 5; ++beat) cl.heartbeat();
  cl.resume();

  ClusterRun run;
  for (usize i = 0; i < tickets.size(); ++i) {
    check(tickets[i].waitFor(std::chrono::seconds(120)),
          "cluster ticket " + std::to_string(i + 1) + " resolves");
  }
  for (usize i = 0; i < tickets.size(); ++i) {
    if (!tickets[i].poll()) {
      run.outcomes.push_back(service::Outcome::Failed);
      run.shards.push_back(0);
      run.outputs.emplace_back();
      continue;  // already reported above
    }
    const cluster::ClusterJobResult& r = tickets[i].result();
    const JobSpec& spec = specs[i];
    const std::string tag =
        spec.tenant + " job " + std::to_string(i + 1);
    check(r.job.outcome == service::Outcome::Completed,
          tag + " completes across the kills (got " +
              std::string(toString(r.job.outcome)) +
              (r.job.error.empty() ? "" : ": " + r.job.error) + ")");
    const std::vector<std::byte>& got =
        spec.kind == service::JobKind::Compress ? r.job.compressed.stream
                                                : r.job.decompressed;
    check(got == spec.expected,
          tag + " output byte-identical to the fault-free serial run");
    run.outcomes.push_back(r.job.outcome);
    run.shards.push_back(r.shard);
    run.outputs.push_back(got);
  }

  // Archive drill over the post-kill membership (deterministic): a
  // single damaged chunk self-heals in place; two damaged chunks in one
  // parity group defeat XOR parity and force a replica failover plus
  // read-repair.
  std::vector<std::byte> raw(3 * cfg.replicaParity.chunkBytes);
  for (usize i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::byte>((i * 131 + 17) & 0xFF);
  }
  const std::vector<std::byte> sealed =
      io::withParityTrailer(raw, cfg.replicaParity);
  cl.putArchive("climate", "soak", ConstByteSpan(raw));
  const u32 primary = cl.primaryShardFor("climate/soak");

  cl.corruptArchiveCopy(primary, "climate", "soak", 33);
  check(cl.getArchive("climate", "soak").archive == sealed,
        "archive self-heals one damaged chunk bit-exactly");

  cl.corruptArchiveCopy(primary, "climate", "soak", 5);
  cl.corruptArchiveCopy(primary, "climate", "soak",
                        cfg.replicaParity.chunkBytes + 5);
  const cluster::CompressionCluster::ArchiveFetch fetched =
      cl.getArchive("climate", "soak");
  check(fetched.archive == sealed,
        "archive read fails over to an intact replica bit-exactly");
  check(fetched.shard != primary, "the failover read left the primary");
  check(cl.getArchive("climate", "soak").shard == primary,
        "read-repair restored the primary copy");

  cl.shutdown();
  run.stats = cl.stats();
  check(run.stats.archiveReadFailovers >= 1,
        "the archive drill recorded a read failover");
  check(run.stats.archiveRepairs >= 2,
        "the archive drill recorded self-heal + read-repair");
  return run;
}

int clusterMain(u64 seed, u32 jobsPerTenant) {
  const std::vector<JobSpec> specs = buildClusterSpecs(jobsPerTenant);
  std::printf("chaos_soak(cluster): seed=%llu jobs=%zu tenants=8 shards=4\n",
              static_cast<unsigned long long>(seed), specs.size());

  const ClusterRun first = runClusterOnce(seed, specs);
  const ClusterRun second = runClusterOnce(seed, specs);
  check(first.stats == second.stats,
        "cluster counters reproduce across two runs of the same seed");
  check(first.outcomes == second.outcomes &&
            first.shards == second.shards &&
            first.outputs == second.outputs,
        "cluster placements and bytes reproduce across runs");
  check(first.stats.shardKills > 0, "the drill killed at least one shard");
  check(first.stats.failovers > 0, "at least one job failed over");
  check(first.stats.abandoned == 0 && first.stats.failed == 0,
        "no ticket was lost to the kills");

  std::printf(
      "run: completed=%llu failovers=%llu steals=%llu kills=%llu "
      "vetoed=%llu degrades=%llu archive_failovers=%llu "
      "archive_repairs=%llu\n",
      static_cast<unsigned long long>(first.stats.completed),
      static_cast<unsigned long long>(first.stats.failovers),
      static_cast<unsigned long long>(first.stats.steals),
      static_cast<unsigned long long>(first.stats.shardKills),
      static_cast<unsigned long long>(first.stats.killsVetoed),
      static_cast<unsigned long long>(first.stats.shardDegrades),
      static_cast<unsigned long long>(first.stats.archiveReadFailovers),
      static_cast<unsigned long long>(first.stats.archiveRepairs));
  if (failures == 0) {
    std::printf("chaos_soak(cluster): OK\n");
    return 0;
  }
  std::fprintf(stderr,
               "chaos_soak(cluster): %d failure(s); replay with --cluster "
               "--seed %llu\n",
               failures, static_cast<unsigned long long>(seed));
  return 1;
}

// ---------------------------------------------------------------------
// --cas mode

/// What the drill believes one live object holds. Blobs must read back
/// byte-identical; streams must DECODE identical (compaction may rewrite
/// the wire bytes, never the content).
struct ShadowEntry {
  bool isStream = false;
  std::vector<std::byte> raw;  ///< blob: exact expected bytes
  Hash128 elements;            ///< stream: hash of decompressed bytes
};

struct CasRun {
  cas::StoreStats store;
  cas::CompactionStats compaction;
  u64 staleRefusals = 0;
  u64 liveObjects = 0;
  std::vector<u32> finalCrcs;  ///< crcOf every live key, key-sorted

  bool operator==(const CasRun&) const = default;
};

Hash128 elementsOf(core::CompressorStream& codec, ConstByteSpan stream) {
  const auto decoded = codec.decompress<f32>(stream);
  return hash128(ConstByteSpan{
      reinterpret_cast<const std::byte*>(decoded.data.data()),
      decoded.data.size() * sizeof(f32)});
}

CasRun runCasOnce(u64 seed, u32 rounds) {
  // Dedup-heavy corpus: a handful of unique payloads that the schedule
  // re-puts under many tenant/name keys (repeated simulation timesteps).
  core::CompressorStream codec(jobConfig());
  std::vector<std::vector<std::byte>> streams;
  for (u32 i = 0; i < 4; ++i) {
    const auto field = datagen::generateF32("cesm_atm", i, 4096);
    streams.push_back(codec.compress<f32>(field).stream);
  }
  std::vector<std::vector<std::byte>> blobs;
  for (u32 i = 0; i < 3; ++i) {
    std::vector<std::byte> b(40000 + 1000 * i);
    SplitMix64 mix(seed + i);
    for (auto& x : b) x = static_cast<std::byte>(mix.next() & 0xFF);
    blobs.push_back(std::move(b));
  }
  const char* tenants[] = {"climate", "cosmo", "fusion", "seismic"};

  cas::BlockStore store({.chunkBytes = 4096, .deferGc = true});
  cas::CompactionConfig ccfg;
  ccfg.coldTicks = 2;
  ccfg.maxPerSweep = 4;
  ccfg.requireSmaller = false;  // drill migrations deterministically
  // Seeded mid-compaction kill: pure in (seed, sweep, candidate), so two
  // same-seed runs abort the same sweeps at the same candidate.
  ccfg.chaosAbort = [seed](u64 sweep, usize candidate) {
    SplitMix64 mix(seed ^ (sweep * 0x9E3779B9ull + candidate));
    return mix.next() % 4 == 0;
  };
  cas::CompactionWorker worker(store, ccfg);

  std::map<std::string, ShadowEntry> shadow;  // key -> expected content
  std::vector<std::string> erased;
  Rng rng(seed);
  u64 staleRefusals = 0;

  const auto verifyAllLive = [&] {
    store.checkInvariants();
    for (const auto& [key, want] : shadow) {
      const auto slash = key.find('/');
      const std::string tenant = key.substr(0, slash);
      const std::string name = key.substr(slash + 1);
      check(store.contains(tenant, name), "live object present: " + key);
      const std::vector<std::byte> got = store.get(tenant, name);
      if (want.isStream) {
        check(elementsOf(codec, got) == want.elements,
              "stream content identical after churn: " + key);
      } else {
        check(got == want.raw, "blob bytes identical after churn: " + key);
      }
    }
    for (const std::string& key : erased) {
      if (shadow.count(key)) continue;  // re-put after the erase
      const auto slash = key.find('/');
      check(!store.contains(key.substr(0, slash), key.substr(slash + 1)),
            "erased object stays gone: " + key);
    }
  };

  for (u32 round = 0; round < rounds; ++round) {
    // A seeded burst of foreground traffic.
    for (u32 op = 0; op < 8; ++op) {
      const std::string tenant = tenants[rng.uniformInt(4)];
      const u64 roll = rng.uniformInt(100);
      if (roll < 50) {  // put (dedup-heavy: few payloads, many keys)
        const bool putStream = rng.uniformInt(2) == 0;
        const std::string name =
            (putStream ? "step-" : "blob-") +
            std::to_string(rng.uniformInt(6));
        const std::string key = tenant + "/" + name;
        ShadowEntry entry;
        if (putStream) {
          const auto& s = streams[rng.uniformInt(streams.size())];
          store.put(tenant, name, ConstByteSpan(s));
          entry.isStream = true;
          entry.elements = elementsOf(codec, s);
        } else {
          const auto& b = blobs[rng.uniformInt(blobs.size())];
          store.put(tenant, name, ConstByteSpan(b));
          entry.raw = b;
        }
        shadow[key] = std::move(entry);
      } else if (roll < 75) {  // get (warms the object)
        if (shadow.empty()) continue;
        auto it = shadow.begin();
        std::advance(it, static_cast<long>(
                             rng.uniformInt(shadow.size())));
        const auto slash = it->first.find('/');
        store.get(it->first.substr(0, slash),
                  it->first.substr(slash + 1));
      } else if (roll < 90) {  // erase
        if (shadow.empty()) continue;
        auto it = shadow.begin();
        std::advance(it, static_cast<long>(
                             rng.uniformInt(shadow.size())));
        const auto slash = it->first.find('/');
        check(store.erase(it->first.substr(0, slash),
                          it->first.substr(slash + 1)),
              "erase of a live key succeeds");
        erased.push_back(it->first);
        shadow.erase(it);
      } else {  // gc sweep of parked chunks
        store.gc();
      }
    }

    // Deliberate stale-commit race every third round: scan, let the
    // foreground delete the candidate, then try to commit it.
    if (round % 3 == 2) {
      const auto candidates = store.compactionCandidates(0, 1);
      if (!candidates.empty()) {
        const auto& c = candidates.front();
        store.erase(c.tenant, c.name);
        erased.push_back(c.tenant + "/" + c.name);
        shadow.erase(c.tenant + "/" + c.name);
        check(!store.commitCompaction(c.tenant, c.name,
                                      ConstByteSpan(c.bytes),
                                      c.generation),
              "stale commit after foreground delete is refused");
        ++staleRefusals;
      }
    }

    // One compaction sweep, possibly killed mid-way by the seeded hook.
    worker.runOnce();
    verifyAllLive();
  }

  store.gc();
  verifyAllLive();

  // Determinism snapshot + save/load round trip of the final store.
  CasRun run;
  run.store = store.stats();
  run.compaction = worker.stats();
  run.staleRefusals = staleRefusals;
  run.liveObjects = shadow.size();
  for (const auto& [key, want] : shadow) {
    const auto slash = key.find('/');
    run.finalCrcs.push_back(
        store.crcOf(key.substr(0, slash), key.substr(slash + 1)));
  }

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("chaos_soak_cas_" + std::to_string(::getpid()) + ".cas"))
          .string();
  const io::ParityOptions parity;
  store.save(path, &parity);
  const auto loaded = cas::BlockStore::load(path, {.deferGc = true});
  std::string error;
  check(loaded->verifyAll(&error), "reloaded store verifies: " + error);
  loaded->checkInvariants();
  for (const auto& [key, want] : shadow) {
    const auto slash = key.find('/');
    const std::string tenant = key.substr(0, slash);
    const std::string name = key.substr(slash + 1);
    check(loaded->get(tenant, name) == store.get(tenant, name),
          "reloaded object byte-identical: " + key);
  }
  std::filesystem::remove(path);
  return run;
}

int casMain(u64 seed, u32 rounds) {
  std::printf("chaos_soak(cas): seed=%llu rounds=%u\n",
              static_cast<unsigned long long>(seed), rounds);

  const CasRun first = runCasOnce(seed, rounds);
  const CasRun second = runCasOnce(seed, rounds);
  check(first == second,
        "store + compaction stats reproduce across two runs of the seed");
  check(first.compaction.sweeps == rounds, "every round swept once");
  check(first.compaction.migrated > 0,
        "the drill migrated at least one object to v3");
  check(first.compaction.chaosAborts > 0,
        "the seeded hook killed at least one sweep mid-compaction");
  check(first.staleRefusals > 0,
        "the drill exercised the stale-commit race");
  check(first.compaction.roundTripRejects == 0,
        "no migration failed its byte-exact proof");
  check(first.store.dedupRatio() > 1.5,
        "the repeated-timestep corpus dedups (ratio " +
            std::to_string(first.store.dedupRatio()) + ")");

  std::printf(
      "run: objects=%llu unique=%llu parked=%llu dedup=%.2fx "
      "migrated=%llu aborts=%llu stale_drops=%llu stale_refused=%llu "
      "resurrections=%llu gc_freed=%llu\n",
      static_cast<unsigned long long>(first.store.objects),
      static_cast<unsigned long long>(first.store.uniqueChunks),
      static_cast<unsigned long long>(first.store.parkedChunks),
      first.store.dedupRatio(),
      static_cast<unsigned long long>(first.compaction.migrated),
      static_cast<unsigned long long>(first.compaction.chaosAborts),
      static_cast<unsigned long long>(first.compaction.staleDrops),
      static_cast<unsigned long long>(first.staleRefusals),
      static_cast<unsigned long long>(first.store.resurrections),
      static_cast<unsigned long long>(first.store.gcFreedChunks));
  if (failures == 0) {
    std::printf("chaos_soak(cas): OK\n");
    return 0;
  }
  std::fprintf(stderr,
               "chaos_soak(cas): %d failure(s); replay with --cas --seed "
               "%llu\n",
               failures, static_cast<unsigned long long>(seed));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Fix the simulated-device pool width before any stream exists: worker
  // wedges park one pool thread, and the drill needs spare threads so a
  // wedged grid still finishes.
  setenv("CUSZP2_WORKERS", "4", 1);

  u64 seed = 20260805;
  u32 jobsPerTenant = 6;
  u32 poisonJobs = 6;
  bool clusterMode = false;
  bool casMode = false;
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobsPerTenant = static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--fast") {
      fast = true;
      jobsPerTenant = 4;
      poisonJobs = 5;
    } else if (arg == "--cluster") {
      clusterMode = true;
    } else if (arg == "--cas") {
      casMode = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_soak [--seed N] [--jobs N] [--fast] "
                   "[--cluster] [--cas]\n");
      return 2;
    }
  }

  if (casMode) {
    return casMain(seed, fast ? 12 : 30);
  }
  if (clusterMode) {
    return clusterMain(seed, fast ? 2 : std::min(jobsPerTenant, 4u));
  }

  const std::vector<JobSpec> specs = buildSpecs(jobsPerTenant, poisonJobs);
  const Forecast fc = forecast(seed, specs);
  std::printf("chaos_soak: seed=%llu jobs=%zu (poison=%u) injected=%llu "
              "stalls+wedges=%llu arena=%llu\n",
              static_cast<unsigned long long>(seed), specs.size(), poisonJobs,
              static_cast<unsigned long long>(fc.injected),
              static_cast<unsigned long long>(fc.stallsAndWedges),
              static_cast<unsigned long long>(fc.arenaFaults));

  const RunCounters first = runOnce(seed, specs);
  const RunCounters second = runOnce(seed, specs);
  check(first == second,
        "recovery counters reproduce across two runs of the same seed");
  if (!(first == second)) {
    const auto row = [](const char* name, u64 a, u64 b) {
      if (a != b) {
        std::fprintf(stderr, "  %s: %llu vs %llu\n", name,
                     static_cast<unsigned long long>(a),
                     static_cast<unsigned long long>(b));
      }
    };
    row("completed", first.completed, second.completed);
    row("failed", first.failed, second.failed);
    row("degraded", first.degraded, second.degraded);
    row("abandoned", first.abandoned, second.abandoned);
    row("recoveries", first.recoveries, second.recoveries);
    row("retries", first.retries, second.retries);
    row("retriesExhausted", first.retriesExhausted, second.retriesExhausted);
    row("breakerOpens", first.breakerOpens, second.breakerOpens);
    row("chaosInjected", first.chaosInjected, second.chaosInjected);
    row("rejectedCircuitOpen", first.rejectedCircuitOpen,
        second.rejectedCircuitOpen);
    row("streamFaultsDetected", first.streamFaultsDetected,
        second.streamFaultsDetected);
    row("streamFaultRelaunches", first.streamFaultRelaunches,
        second.streamFaultRelaunches);
  }

  std::printf(
      "run: completed=%llu degraded=%llu recoveries=%llu retries=%llu "
      "exhausted=%llu breaker_opens=%llu chaos=%llu stream_faults=%llu "
      "stream_relaunches=%llu\n",
      static_cast<unsigned long long>(first.completed),
      static_cast<unsigned long long>(first.degraded),
      static_cast<unsigned long long>(first.recoveries),
      static_cast<unsigned long long>(first.retries),
      static_cast<unsigned long long>(first.retriesExhausted),
      static_cast<unsigned long long>(first.breakerOpens),
      static_cast<unsigned long long>(first.chaosInjected),
      static_cast<unsigned long long>(first.streamFaultsDetected),
      static_cast<unsigned long long>(first.streamFaultRelaunches));
  if (failures == 0) {
    std::printf("chaos_soak: OK\n");
    return 0;
  }
  std::fprintf(stderr, "chaos_soak: %d failure(s); replay with --seed %llu\n",
               failures, static_cast<unsigned long long>(seed));
  return 1;
}
