// cuszp2 — command-line front end, mirroring the paper artifact's gsz_p /
// gsz_o binaries plus inspection utilities.
//
//   cuszp2 compress   <in.f32|in.f64> <out.czp2> [--rel 1e-3|--abs X]
//                     [--mode outlier|plain] [--precision f32|f64]
//                     [--block 32]
//   cuszp2 decompress <in.czp2> <out.raw> [--salvage] [--fill X]
//   cuszp2 info       <in.czp2>
//   cuszp2 verify     <original.raw> <in.czp2>
//   cuszp2 verify     <in.czp2|archive>          (integrity only)
//   cuszp2 repair     <archive> [--dry-run]
//   cuszp2 profile    <in.raw> [compress options]
//   cuszp2 serve      --jobs <manifest> [--workers N] [--batch N]
//                     [--depth N] [--quota BYTES] [--unbatched]
//                     [--chaos-seed N] [--shards N] [--replicas R]
//                     [--cas]
//   cuszp2 store      put|get|rm|gc|compact|stat against an on-disk
//                     content-addressed block store (docs/CAS.md)
//
// `--trace <out.json>` before any subcommand's options writes a
// chrome://tracing / Perfetto-compatible trace of every simulated kernel
// launch (see docs/OBSERVABILITY.md). The trace is flushed on every exit
// path — errors and usage failures included — with any open spans closed
// synthetically, so an aborted run still produces loadable JSON.
//
// Exit codes: 0 on success; 1 on operational errors and error-bound
// violations; 2 on integrity failures (corrupt stream, failed parity).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cas/block_store.hpp"
#include "cas/compaction.hpp"
#include "cluster/cluster.hpp"
#include "core/compressor.hpp"
#include "core/pipeline.hpp"
#include "core/quantizer.hpp"
#include "datagen/fields.hpp"
#include "io/archive.hpp"
#include "io/raw.hpp"
#include "metrics/error_stats.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

using namespace cuszp2;

namespace {

struct Options {
  f64 rel = 1e-3;
  f64 abs = 0.0;
  EncodingMode mode = EncodingMode::Outlier;
  Precision precision = Precision::F32;
  u32 blockSize = 32;
  Predictor predictor = Predictor::FirstOrder;
  bool checksum = false;
  bool blockChecksums = false;
  core::PipelineMode pipeline = core::PipelineMode::Legacy;
};

// --trace session state lives at file scope so every exit path — the
// normal return, the catch-all in main, and usage()'s std::exit — can
// flush the JSON. Without this, a bad argument after --trace would leave
// an empty/partial file.
std::unique_ptr<telemetry::TraceSession> g_trace;
std::unique_ptr<telemetry::ScopedTrace> g_traceScope;
std::string g_tracePath;

/// Closes any spans left open by an aborted run and writes the trace.
/// Idempotent; returns false only on an I/O failure.
bool flushTrace() {
  if (!g_trace) return true;
  g_traceScope.reset();
  g_trace->closeOpenSpans();
  const bool ok = g_trace->writeJson(g_tracePath);
  g_trace.reset();
  return ok;
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cuszp2 compress   <in.raw> <out.czp2> [--rel X|--abs X]\n"
      "                    [--mode outlier|plain] [--precision f32|f64]\n"
      "                    [--block N] [--predictor first|second]\n"
      "                    [--checksum] [--block-checksum]\n"
      "                    [--pipeline legacy|auto|fle|huffman|rle|\n"
      "                                lorenzo-fle]\n"
      "  cuszp2 decompress <in.czp2> <out.raw> [--salvage] [--fill X]\n"
      "  cuszp2 info       <in.czp2>\n"
      "  cuszp2 verify     <original.raw> <in.czp2>\n"
      "  cuszp2 verify     <in.czp2|archive>       (integrity only)\n"
      "  cuszp2 repair     <archive> [--dry-run]\n"
      "  cuszp2 profile    <in.raw> [compress options]\n"
      "  cuszp2 serve      --jobs <manifest> [--workers N] [--batch N]\n"
      "                    [--depth N] [--quota BYTES] [--unbatched]\n"
      "                    [--chaos-seed N] [--shards N] [--replicas R]\n"
      "                    [--cas]\n"
      "  cuszp2 store put     <store.cas> <tenant> <name> <file>\n"
      "  cuszp2 store get     <store.cas> <tenant> <name> <out-file>\n"
      "  cuszp2 store rm      <store.cas> <tenant> <name>\n"
      "  cuszp2 store gc      <store.cas>\n"
      "  cuszp2 store compact <store.cas> [--cold-ticks N] [--max N]\n"
      "                       [--pipeline auto|huffman|rle|lorenzo-fle]\n"
      "  cuszp2 store stat    <store.cas>\n"
      "  cuszp2 store recover <store.cas> [--journal <p>] [--dry-run]\n"
      "                       (replay the write-ahead journal onto the\n"
      "                        last good snapshot; default journal is\n"
      "                        <store.cas>.jnl; exit 2 = unrecoverable)\n"
      "\n"
      "  serve manifest lines: <tenant> <dataset> <elems> <jobs> [rel]\n"
      "  --cas           route each completed job's compressed stream\n"
      "                  through a content-addressed store and print the\n"
      "                  dedup health line (docs/CAS.md)\n"
      "  --shards N      route tenants across N in-process shards on a\n"
      "                  consistent-hash ring (heterogeneous fleet);\n"
      "                  --workers is then workers per shard\n"
      "  --chaos-seed N  seeded fault drill: injects bit flips, aborted\n"
      "                  blocks, stalls, wedged workers and arena\n"
      "                  exhaustion; every job must still resolve via\n"
      "                  retries, the watchdog, and degraded decode\n"
      "\n"
      "  --trace <out.json>  (any subcommand) write a chrome://tracing\n"
      "                      compatible kernel trace\n");
  flushTrace();
  std::exit(2);
}

Options parseOptions(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--rel") {
      opt.rel = std::stod(next());
      opt.abs = 0.0;
    } else if (arg == "--abs") {
      opt.abs = std::stod(next());
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "outlier") {
        opt.mode = EncodingMode::Outlier;
      } else if (m == "plain") {
        opt.mode = EncodingMode::Plain;
      } else {
        usage();
      }
    } else if (arg == "--precision") {
      const std::string p = next();
      if (p == "f32") {
        opt.precision = Precision::F32;
      } else if (p == "f64") {
        opt.precision = Precision::F64;
      } else {
        usage();
      }
    } else if (arg == "--block") {
      opt.blockSize = static_cast<u32>(std::stoul(next()));
    } else if (arg == "--predictor") {
      const std::string p = next();
      if (p == "first") {
        opt.predictor = Predictor::FirstOrder;
      } else if (p == "second") {
        opt.predictor = Predictor::SecondOrder;
      } else {
        usage();
      }
    } else if (arg == "--checksum") {
      opt.checksum = true;
    } else if (arg == "--block-checksum") {
      opt.blockChecksums = true;
    } else if (arg == "--pipeline") {
      try {
        opt.pipeline = core::parsePipelineMode(next());
      } catch (const Error&) {
        usage();
      }
    } else {
      usage();
    }
  }
  return opt;
}

template <FloatingPoint T>
int doCompress(const std::string& in, const std::string& out,
               const Options& opt) {
  const io::MappedBytes mapped(in);
  const std::span<const T> data = mapped.view<T>();
  core::Config cfg;
  cfg.mode = opt.mode;
  cfg.blockSize = opt.blockSize;
  cfg.predictor = opt.predictor;
  cfg.checksum = opt.checksum;
  cfg.blockChecksums = opt.blockChecksums;
  cfg.pipeline = opt.pipeline;
  cfg.absErrorBound =
      opt.abs > 0.0 ? opt.abs
                    : core::Quantizer::absFromRel(
                          opt.rel, metrics::valueRange<T>(data));
  core::CompressorStream codec(cfg);
  const auto c = codec.compress<T>(std::span<const T>(data));
  io::writeBytes(out, c.stream);
  std::printf("compressed %zu values (%zu bytes) -> %zu bytes\n",
              data.size(), data.size() * sizeof(T), c.stream.size());
  std::printf("ratio: %.4f | mode: %s | pipeline: %s | "
              "abs error bound: %g\n",
              c.ratio, toString(cfg.mode), core::toString(cfg.pipeline),
              cfg.absErrorBound);
  std::printf("modelled end-to-end: %.2f GB/s on %s\n",
              c.profile.endToEndGBps, codec.device().name.c_str());
  return 0;
}

int doDecompress(const std::string& in, const std::string& out) {
  const io::MappedBytes mapped(in);
  const ConstByteSpan stream = mapped.bytes();
  const auto header = core::StreamHeader::parse(stream);
  core::CompressorStream codec(
      core::Config{.absErrorBound = header.absErrorBound});
  if (header.precision == Precision::F32) {
    const auto d = codec.decompress<f32>(stream);
    io::writeRaw<f32>(out, d.data);
    std::printf("decompressed %zu f32 values (%.2f GB/s modelled)\n",
                d.data.size(), d.profile.endToEndGBps);
  } else {
    const auto d = codec.decompress<f64>(stream);
    io::writeRaw<f64>(out, d.data);
    std::printf("decompressed %zu f64 values (%.2f GB/s modelled)\n",
                d.data.size(), d.profile.endToEndGBps);
  }
  return 0;
}

void printDecodeReport(const core::DecodeReport& rep) {
  if (!rep.headerOk) {
    std::printf("salvage: header unusable (%s)\n", rep.headerError.c_str());
    return;
  }
  std::printf("salvage: %llu/%llu blocks recovered",
              static_cast<unsigned long long>(rep.goodBlocks),
              static_cast<unsigned long long>(rep.totalBlocks));
  if (rep.badBlocks > 0) {
    std::printf(", %llu quarantined (first damage at byte %llu)",
                static_cast<unsigned long long>(rep.badBlocks),
                static_cast<unsigned long long>(rep.firstCorruptOffset));
  }
  std::printf("\n");
  if (!rep.streamChecksumOk) std::printf("salvage: stream CRC mismatch\n");
  if (rep.framingDamaged) std::printf("salvage: stream framing damaged\n");
}

/// Salvage decode: quarantined blocks hold the fill value; always writes
/// the output. Exit 0 when the stream was clean, 2 when damage was found.
int doSalvageDecompress(const std::string& in, const std::string& out,
                        f64 fill) {
  const io::MappedBytes mapped(in);
  const ConstByteSpan stream = mapped.bytes();
  std::string headerError;
  const auto header = core::StreamHeader::tryParse(stream, &headerError);
  if (!header) {
    std::fprintf(stderr, "salvage: header unusable (%s)\n",
                 headerError.c_str());
    return 2;
  }
  core::CompressorStream codec(
      core::Config{.absErrorBound = header->absErrorBound});
  core::DecodeReport rep;
  if (header->precision == Precision::F32) {
    const auto d =
        codec.decompressResilient<f32>(stream, static_cast<f32>(fill));
    io::writeRaw<f32>(out, d.data);
    rep = d.report;
  } else {
    const auto d = codec.decompressResilient<f64>(stream, fill);
    io::writeRaw<f64>(out, d.data);
    rep = d.report;
  }
  printDecodeReport(rep);
  return rep.clean() ? 0 : 2;
}

/// Shared dedup health line: unique vs. logical blocks and the bytes the
/// content-addressed sharing saved (printed by `info` on a store file and
/// by `serve --cas`).
void printCasLine(const cas::StoreStats& s) {
  std::printf("cas: %llu objects, %llu unique / %llu logical blocks, "
              "%llu bytes saved (%.2fx dedup)\n",
              static_cast<unsigned long long>(s.objects),
              static_cast<unsigned long long>(s.uniqueChunks),
              static_cast<unsigned long long>(s.logicalChunks),
              static_cast<unsigned long long>(s.bytesSaved()),
              s.dedupRatio());
}

/// Journal status in one line (docs/DURABILITY.md). For a live store the
/// status comes from the attached writer; for `store stat` the sibling
/// journal file is probed read-only instead.
void printJournalLine(const io::JournalStatus& js) {
  if (!js.attached) {
    std::printf("journal: detached\n");
    return;
  }
  std::printf("journal: %s, baseTick %llu, %llu records appended "
              "(%llu synced)\n",
              js.path.c_str(), static_cast<unsigned long long>(js.baseTick),
              static_cast<unsigned long long>(js.recordsAppended),
              static_cast<unsigned long long>(js.recordsSynced));
}

/// `info` on a saved BlockStore file: dedup stats instead of stream
/// fields (a store is an archive, not a cuSZp2 stream).
int doInfoStore(const std::string& in) {
  const auto store = cas::BlockStore::load(in, {.deferGc = true});
  const cas::StoreStats s = store->stats();
  std::printf("cuSZp2 CAS store: %s\n", in.c_str());
  std::printf("  chunk bytes:     %zu\n", store->config().chunkBytes);
  std::printf("  objects:         %llu\n",
              static_cast<unsigned long long>(s.objects));
  std::printf("  logical blocks:  %llu\n",
              static_cast<unsigned long long>(s.logicalChunks));
  std::printf("  unique blocks:   %llu (%llu parked for gc)\n",
              static_cast<unsigned long long>(s.uniqueChunks),
              static_cast<unsigned long long>(s.parkedChunks));
  std::printf("  logical bytes:   %llu\n",
              static_cast<unsigned long long>(s.logicalBytes));
  std::printf("  physical bytes:  %llu\n",
              static_cast<unsigned long long>(s.physicalBytes));
  std::printf("  bytes saved:     %llu\n",
              static_cast<unsigned long long>(s.bytesSaved()));
  std::printf("  dedup ratio:     %.4f\n", s.dedupRatio());
  u64 hot = 0;
  u64 v3 = 0;
  u64 opaque = 0;
  for (const auto& obj : store->objects()) {
    if (obj.formatVersion == core::kFormatVersionV3) ++v3;
    else if (obj.formatVersion != 0) ++hot;
    else ++opaque;
  }
  std::printf("  encodings:       %llu hot (v1/v2), %llu v3, %llu opaque\n",
              static_cast<unsigned long long>(hot),
              static_cast<unsigned long long>(v3),
              static_cast<unsigned long long>(opaque));
  // Journal status: probe the sibling WAL read-only (docs/DURABILITY.md).
  // A torn tail here is advisory — `store recover` is the repair verb.
  const std::string jpath = in + ".jnl";
  if (std::filesystem::exists(jpath)) {
    try {
      const io::ReplayResult rep = io::replayJournal(jpath);
      std::printf("  journal:         %s: %zu records past tick %llu, %s\n",
                  jpath.c_str(), rep.records.size(),
                  static_cast<unsigned long long>(rep.baseTick),
                  rep.torn
                      ? ("TORN tail (" + std::to_string(rep.discardedBytes) +
                         " bytes to discard)")
                            .c_str()
                      : "clean tail");
    } catch (const Error& e) {
      std::printf("  journal:         %s: UNRECOVERABLE (%s)\n",
                  jpath.c_str(), e.what());
    }
  } else {
    std::printf("  journal:         none\n");
  }
  printCasLine(s);
  return 0;
}

int doInfo(const std::string& in) {
  const io::MappedBytes mapped(in);
  const ConstByteSpan stream = mapped.bytes();
  if (cas::BlockStore::isStoreFile(stream)) return doInfoStore(in);
  const auto header = core::StreamHeader::parse(stream);
  std::printf("cuSZp2 stream: %s\n", in.c_str());
  std::printf("  format version:  %u\n", header.version);
  std::printf("  precision:       %s\n", toString(header.precision));
  std::printf("  encoding mode:   %s\n", toString(header.mode));
  std::printf("  predictor:       %s\n", toString(header.predictor));
  std::printf("  checksum:        %s\n",
              header.checksum != 0 ? "yes" : "no");
  std::printf("  block checksums: %s\n",
              header.hasBlockChecksums() ? "yes" : "no");
  std::printf("  block size:      %u\n", header.blockSize);
  std::printf("  elements:        %llu\n",
              static_cast<unsigned long long>(header.numElements));
  std::printf("  blocks:          %llu\n",
              static_cast<unsigned long long>(header.numBlocks()));
  std::printf("  abs error bound: %g\n", header.absErrorBound);
  if (header.version >= core::kFormatVersionV3) {
    // Per-pipeline block tally from the 4-byte descriptor array.
    u64 counts[core::kPipelineCount] = {};
    for (u64 blk = 0; blk < header.numBlocks(); ++blk) {
      const auto desc = core::V3BlockDesc::unpack(
          stream.data() + core::StreamHeader::offsetsBegin() +
          blk * core::kV3DescBytes);
      require(desc.knownPipeline(), "info: unknown pipeline id in stream");
      counts[static_cast<u8>(desc.pipeline)] += 1;
    }
    std::printf("  pipeline blocks:");
    for (u32 p = 0; p < core::kPipelineCount; ++p) {
      if (counts[p] == 0) continue;
      std::printf(" %s=%llu", core::toString(static_cast<core::PipelineId>(p)),
                  static_cast<unsigned long long>(counts[p]));
    }
    std::printf("\n");
    std::printf("  dict bytes:      %u\n", header.dictBytes);
  }
  std::printf("  stream bytes:    %zu\n", stream.size());
  std::printf("  ratio:           %.4f\n",
              static_cast<f64>(header.originalBytes()) /
                  static_cast<f64>(stream.size()));
  return 0;
}

template <FloatingPoint T>
int doVerifyTyped(const std::string& original, ConstByteSpan stream,
                  const core::StreamHeader& header) {
  const io::MappedBytes mappedOriginal(original);
  const std::span<const T> data = mappedOriginal.view<T>();
  require(data.size() == header.numElements,
          "verify: original size does not match the stream");
  core::CompressorStream codec(
      core::Config{.absErrorBound = header.absErrorBound});
  core::Decompressed<T> d;
  try {
    d = codec.decompress<T>(stream);
  } catch (const Error& e) {
    // Integrity failures (checksum/digest/layout) are distinct from an
    // error-bound violation: exit 2, not 1.
    std::fprintf(stderr, "integrity failure: %s\n", e.what());
    return 2;
  }
  const auto stats = metrics::computeErrorStats<T>(
      std::span<const T>(data), std::span<const T>(d.data));
  std::printf("max abs error: %g (bound %g)\n", stats.maxAbsError,
              header.absErrorBound);
  std::printf("PSNR: %.2f dB\n", stats.psnrDb);
  const bool ok = stats.withinBoundFp(header.absErrorBound,
                                      header.precision);
  std::printf("%s\n", ok ? "Pass error check!" : "ERROR CHECK FAILED");
  return ok ? 0 : 1;
}

/// Per-kernel summary table from the telemetry registry: launches, DRAM
/// bytes, modelled seconds, each kernel's share of the total modelled
/// time, the throughput the host substrate actually achieved, and the
/// wall/modelled ratio (host-seconds per modelled device-second).
void printKernelTable() {
  const auto rows = telemetry::registry().snapshotKernels();
  if (rows.empty()) return;
  f64 totalModelled = 0.0;
  for (const auto& r : rows) totalModelled += r.modelledSeconds;
  std::printf("per-kernel summary:\n");
  std::printf("  %-22s %9s %14s %14s %7s %12s %9s\n", "kernel", "launches",
              "DRAM bytes", "modelled us", "% time", "achieved GB/s",
              "wall/mdl");
  for (const auto& r : rows) {
    std::printf("  %-22s %9llu %14llu %14.2f %6.1f%% %13.2f %9.1f\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.launches),
                static_cast<unsigned long long>(r.dramBytes),
                r.modelledSeconds * 1e6,
                totalModelled > 0.0
                    ? 100.0 * r.modelledSeconds / totalModelled
                    : 0.0,
                r.achievedGbps(), r.modelRatio());
  }
}

/// Compresses in memory and prints the per-kernel telemetry table plus the
/// modelled timing-term breakdown — the observability view of
/// docs/MODEL.md and docs/OBSERVABILITY.md.
template <FloatingPoint T>
int doProfileTyped(const std::string& in, const Options& opt) {
  const io::MappedBytes mapped(in);
  const std::span<const T> data = mapped.view<T>();
  core::Config cfg;
  cfg.mode = opt.mode;
  cfg.blockSize = opt.blockSize;
  cfg.predictor = opt.predictor;
  cfg.pipeline = opt.pipeline;
  cfg.absErrorBound =
      opt.abs > 0.0 ? opt.abs
                    : core::Quantizer::absFromRel(
                          opt.rel, metrics::valueRange<T>(data));
  telemetry::registry().setEnabled(true);
  telemetry::registry().reset();
  core::CompressorStream codec(cfg);
  const auto c = codec.compress<T>(std::span<const T>(data));
  const auto d = codec.decompress<T>(c.stream);

  auto show = [](const char* phase, const core::KernelProfile& p) {
    std::printf("%s kernel (modelled):\n", phase);
    std::printf("  bandwidth  %10.2f us\n", p.timing.bandwidthSeconds * 1e6);
    std::printf("  issue      %10.2f us\n", p.timing.issueSeconds * 1e6);
    std::printf("  compute    %10.2f us\n", p.timing.computeSeconds * 1e6);
    std::printf("  memset     %10.2f us\n", p.timing.memsetSeconds * 1e6);
    std::printf("  sync       %10.2f us (%s, %llu tiles, depth %llu)\n",
                p.timing.syncSeconds * 1e6,
                p.sync.method == gpusim::SyncMethod::DecoupledLookback
                    ? "decoupled lookback"
                    : "other",
                static_cast<unsigned long long>(p.sync.tiles),
                static_cast<unsigned long long>(p.sync.maxLookbackDepth));
    std::printf("  launch     %10.2f us\n", p.timing.launchSeconds * 1e6);
    std::printf("  total      %10.2f us -> %.2f GB/s end-to-end\n",
                p.endToEndSeconds * 1e6, p.endToEndGBps);
    std::printf("  traffic    %.2f MB read, %.2f MB written, %.2f MB "
                "on-chip\n",
                p.mem.bytesRead / 1e6, p.mem.bytesWritten / 1e6,
                p.mem.l1Bytes / 1e6);
    std::printf("  mem pipeline throughput %.2f GB/s\n",
                p.timing.memThroughputGBps);
  };
  std::printf("device: %s | ratio: %.4f\n\n", codec.device().name.c_str(),
              c.ratio);
  printKernelTable();
  std::printf("\n");
  show("compression", c.profile);
  std::printf("\n");
  show("decompression", d.profile);
  return 0;
}

int doVerify(const std::string& original, const std::string& in) {
  const io::MappedBytes mapped(in);
  const ConstByteSpan stream = mapped.bytes();
  core::StreamHeader header;
  try {
    header = core::StreamHeader::parse(stream);
  } catch (const Error& e) {
    std::fprintf(stderr, "integrity failure: %s\n", e.what());
    return 2;
  }
  return header.precision == Precision::F32
             ? doVerifyTyped<f32>(original, stream, header)
             : doVerifyTyped<f64>(original, stream, header);
}

void printParityReport(const io::RepairReport& rep) {
  std::printf("parity: %llu chunks over %llu bytes, %llu damaged",
              static_cast<unsigned long long>(rep.totalChunks),
              static_cast<unsigned long long>(rep.protectedBytes),
              static_cast<unsigned long long>(rep.badChunks));
  if (rep.repairableChunks > 0) {
    std::printf(" (%llu repairable)",
                static_cast<unsigned long long>(rep.repairableChunks));
  }
  if (rep.repairedChunks > 0) {
    std::printf(" (%llu repaired)",
                static_cast<unsigned long long>(rep.repairedChunks));
  }
  if (rep.unrepairableChunks > 0) {
    std::printf(" (%llu beyond repair)",
                static_cast<unsigned long long>(rep.unrepairableChunks));
  }
  std::printf("\n");
}

/// Integrity-only verify of a stream or an archive (no original needed).
int doVerifyIntegrity(const std::string& in) {
  const io::MappedBytes mapped(in);
  const ConstByteSpan bytes = mapped.bytes();

  if (io::isArchive(bytes)) {
    const auto rep = io::verifyParity(bytes);
    if (!rep.parityPresent) {
      std::fprintf(stderr,
                   "verify: archive has no parity trailer — integrity "
                   "unknown\n");
      return 1;
    }
    if (!rep.trailerOk) {
      std::fprintf(stderr, "integrity failure: parity trailer damaged\n");
      return 2;
    }
    printParityReport(rep);
    return rep.badChunks == 0 ? 0 : 2;
  }

  std::string headerError;
  const auto header = core::StreamHeader::tryParse(bytes, &headerError);
  if (!header) {
    std::fprintf(stderr, "integrity failure: %s\n", headerError.c_str());
    return 2;
  }
  core::CompressorStream codec(
      core::Config{.absErrorBound = header->absErrorBound});
  const core::DecodeReport rep =
      header->precision == Precision::F32
          ? codec.decompressResilient<f32>(bytes).report
          : codec.decompressResilient<f64>(bytes).report;
  printDecodeReport(rep);
  if (!rep.clean()) return 2;
  std::printf("integrity ok (format v%u, %s per-block checksums)\n",
              header->version,
              header->hasBlockChecksums() ? "with" : "without");
  return 0;
}

/// Verifies an archive's parity and (unless dry-run) rebuilds damaged
/// chunks in place, rewriting the file.
int doRepair(const std::string& path, bool dryRun) {
  auto bytes = io::readBytes(path);
  if (!io::isArchive(bytes)) {
    std::fprintf(stderr, "repair: %s is not a cuSZp2 archive\n",
                 path.c_str());
    return 1;
  }
  const io::RepairReport rep =
      dryRun ? io::verifyParity(bytes)
             : io::repairParity(std::span<std::byte>(bytes));
  if (!rep.parityPresent) {
    std::fprintf(stderr, "repair: archive has no parity trailer\n");
    return 1;
  }
  if (!rep.trailerOk) {
    std::fprintf(stderr, "integrity failure: parity trailer damaged\n");
    return 2;
  }
  printParityReport(rep);
  if (!dryRun && rep.repairedChunks > 0) {
    io::writeBytes(path, bytes);
    std::printf("repair: rewrote %s\n", path.c_str());
  }
  if (rep.unrepairableChunks > 0) return 2;
  if (dryRun && rep.badChunks > 0) return 2;
  return 0;
}

/// One manifest line of the serve subcommand: `tenant dataset elems jobs
/// [rel]`. Blank lines and `#` comments are skipped.
struct ManifestEntry {
  std::string tenant;
  std::string dataset;
  usize elems = 0;
  u32 jobs = 0;
  f64 rel = 1e-3;
};

std::vector<ManifestEntry> parseManifest(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "serve: cannot open manifest " + path);
  std::vector<ManifestEntry> out;
  std::string line;
  usize lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    ManifestEntry e;
    if (!(fields >> e.tenant >> e.dataset >> e.elems >> e.jobs)) {
      std::string word;
      require(!(std::istringstream(line) >> word),
              "serve: malformed manifest line " + std::to_string(lineNo));
      continue;  // blank or comment-only line
    }
    fields >> e.rel;
    require(e.elems > 0 && e.jobs > 0 && e.rel > 0.0,
            "serve: manifest line " + std::to_string(lineNo) +
                ": elems, jobs and rel must be positive");
    datagen::datasetInfo(e.dataset);  // throws on unknown dataset
    out.push_back(std::move(e));
  }
  require(!out.empty(), "serve: manifest has no job lines");
  return out;
}

/// Per-outcome job tally behind the `health:` line. A serve run succeeds
/// only when at least one job was actually served (Completed or Degraded).
struct OutcomeTally {
  u64 completed = 0;
  u64 failed = 0;
  u64 degraded = 0;
  u64 abandoned = 0;
  u64 canceled = 0;

  void count(service::Outcome outcome) {
    switch (outcome) {
      case service::Outcome::Completed: ++completed; break;
      case service::Outcome::Degraded: ++degraded; break;
      case service::Outcome::Canceled: ++canceled; break;
      case service::Outcome::Abandoned: ++abandoned; break;
      default: ++failed; break;
    }
  }
  bool served() const { return completed + degraded > 0; }
};

/// Runs a multi-tenant workload from a manifest through a
/// CompressionService and prints per-tenant and scheduler summaries. Job
/// inputs are deterministic synthetic fields (datagen), so two runs of the
/// same manifest produce identical compressed bytes.
int doServe(const std::string& manifestPath, u32 workers, u32 maxBatch,
            usize depth, u64 quota, bool unbatched, bool chaos,
            u64 chaosSeed, bool useCas) {
  const auto entries = parseManifest(manifestPath);
  telemetry::registry().setEnabled(true);
  telemetry::registry().reset();

  std::shared_ptr<cas::BlockStore> store;
  if (useCas) store = std::make_shared<cas::BlockStore>();
  service::ServiceConfig cfg;
  cfg.store = store;
  cfg.workers = workers;
  cfg.maxQueueDepth = depth;
  cfg.tenantQuotaBytes = quota;
  if (unbatched) cfg.maxBatchJobs = 1;
  else if (maxBatch > 0) cfg.maxBatchJobs = maxBatch;
  // Paused start: with the whole manifest queued before dispatch begins,
  // batch formation is deterministic and the coalescing win is visible.
  // The submit loop resumes early if the queue fills (see below), so a
  // manifest larger than --depth still drains.
  cfg.startPaused = true;
  if (chaos) {
    // Seeded fault drill: the schedule only faults first attempts, so
    // with retries + watchdog every job still resolves. Short stalls and
    // a tight watchdog deadline keep the drill interactive.
    service::ChaosConfig ccfg;
    ccfg.seed = chaosSeed;
    ccfg.stallTicks = 150;
    ccfg.wedgeTicks = 150;
    cfg.chaosHook = service::SeededChaosSchedule(ccfg).hook();
    cfg.watchdog.minTimeoutMillis = 100;
    cfg.breaker.threshold = 4;
  }
  service::CompressionService svc(cfg);

  struct Pending {
    const ManifestEntry* entry;
    service::Ticket ticket;
  };
  std::vector<Pending> pending;

  // Submit round-robin across tenants so lanes genuinely interleave.
  // Admission rejections are backpressure, not errors: QueueFull and
  // QuotaExceeded drain-and-retry, anything else is fatal.
  u32 maxJobs = 0;
  for (const auto& e : entries) maxJobs = std::max(maxJobs, e.jobs);
  u64 rejections = 0;
  for (u32 j = 0; j < maxJobs; ++j) {
    for (const auto& e : entries) {
      if (j >= e.jobs) continue;
      const auto& info = datagen::datasetInfo(e.dataset);
      const auto field =
          datagen::generateF32(e.dataset, j % info.numFields, e.elems);
      core::Config jobCfg;
      jobCfg.relErrorBound = e.rel;
      if (chaos) {
        // Checksums make injected bit flips detectable; in-stream retries
        // absorb them before they ever surface as a job failure.
        jobCfg.checksum = true;
        jobCfg.blockChecksums = true;
        jobCfg.faultRetries = 2;
      }
      for (;;) {
        auto submitted = svc.submitCompress<f32>(
            e.tenant, std::span<const f32>(field), jobCfg);
        if (submitted.accepted()) {
          pending.push_back(Pending{&e, std::move(submitted.ticket)});
          break;
        }
        // CircuitOpen clears on its own once the tenant's cooldown admits
        // a successful probe, so it drains just like backpressure.
        require(submitted.reason == service::RejectReason::QueueFull ||
                    submitted.reason == service::RejectReason::QuotaExceeded ||
                    submitted.reason == service::RejectReason::CircuitOpen,
                "serve: submission rejected: " + submitted.detail);
        ++rejections;
        svc.resume();  // start draining so a retried slot can free up
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  svc.resume();
  svc.shutdown();

  struct TenantSummary {
    u32 jobs = 0;
    u32 failed = 0;
    u64 bytesIn = 0;
    u64 bytesOut = 0;
    f64 waitUs = 0.0;
    f64 serviceUs = 0.0;
  };
  std::vector<std::pair<std::string, TenantSummary>> tenants;
  auto summaryFor = [&](const std::string& t) -> TenantSummary& {
    for (auto& [name, s] : tenants) {
      if (name == t) return s;
    }
    tenants.emplace_back(t, TenantSummary{});
    return tenants.back().second;
  };
  int rc = 0;
  OutcomeTally tally;
  for (const Pending& p : pending) {
    const service::JobResult& r = p.ticket.wait();
    TenantSummary& s = summaryFor(p.entry->tenant);
    s.jobs += 1;
    tally.count(r.outcome);
    // Degraded is an acceptable end state (salvaged output, typed
    // report); only hard losses fail the run.
    if (!r.ok && r.outcome != service::Outcome::Degraded) {
      s.failed += 1;
      std::fprintf(stderr, "serve: tenant %s job %llu failed: %s\n",
                   p.entry->tenant.c_str(),
                   static_cast<unsigned long long>(r.jobId),
                   r.error.c_str());
      rc = 1;
      continue;
    }
    s.bytesIn += r.compressed.originalBytes;
    s.bytesOut += r.compressed.stream.size();
    s.waitUs += r.waitUs;
    s.serviceUs += r.serviceUs;
    // Route each completed stream through the tenant's logical CAS
    // namespace: jobs from different tenants compressing the same field
    // land on the same physical chunks (the dedup line below shows it).
    if (store && !r.compressed.stream.empty()) {
      svc.putObject(p.entry->tenant,
                    "job-" + std::to_string(r.jobId),
                    ConstByteSpan(r.compressed.stream));
    }
  }
  // A run that served nothing is a failure even when nothing hard-failed
  // (e.g. every job was abandoned or canceled before dispatch).
  if (!tally.served()) rc = 1;

  std::printf("served %zu jobs from %zu tenants on %u workers "
              "(batching %s)\n",
              pending.size(), tenants.size(), svc.workerCount(),
              unbatched ? "off" : "on");
  if (rejections > 0) {
    std::printf("backpressure: %llu submissions retried\n",
                static_cast<unsigned long long>(rejections));
  }
  std::printf("per-tenant summary:\n");
  std::printf("  %-12s %6s %12s %12s %8s %12s %12s\n", "tenant", "jobs",
              "bytes in", "bytes out", "ratio", "avg wait us",
              "avg svc us");
  for (const auto& [name, s] : tenants) {
    const f64 n = s.jobs > 0 ? static_cast<f64>(s.jobs) : 1.0;
    std::printf("  %-12s %6u %12llu %12llu %8.3f %12.1f %12.1f\n",
                name.c_str(), s.jobs,
                static_cast<unsigned long long>(s.bytesIn),
                static_cast<unsigned long long>(s.bytesOut),
                s.bytesOut > 0 ? static_cast<f64>(s.bytesIn) /
                                     static_cast<f64>(s.bytesOut)
                               : 0.0,
                s.waitUs / n, s.serviceUs / n);
    if (s.failed > 0) {
      std::printf("  %-12s %6u jobs FAILED\n", name.c_str(), s.failed);
    }
  }
  const service::ServiceStats stats = svc.stats();
  std::printf("scheduler: %llu jobs in %llu fused launches "
              "(%llu launches saved)\n",
              static_cast<unsigned long long>(stats.dispatched),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.launchesSaved()));
  std::printf("health: %llu completed, %llu failed, %llu degraded, "
              "%llu abandoned, %llu canceled; watchdog recoveries %llu, "
              "retries %llu, stream relaunches %llu, breaker opens %llu, "
              "chaos injections %llu\n",
              static_cast<unsigned long long>(tally.completed),
              static_cast<unsigned long long>(tally.failed),
              static_cast<unsigned long long>(tally.degraded),
              static_cast<unsigned long long>(tally.abandoned),
              static_cast<unsigned long long>(tally.canceled),
              static_cast<unsigned long long>(stats.watchdogRecoveries),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.streamFaultRelaunches),
              static_cast<unsigned long long>(stats.breakerOpens),
              static_cast<unsigned long long>(stats.chaosInjected));
  if (store) {
    printCasLine(store->stats());
    printJournalLine(store->journalStatus());
  }
  printKernelTable();
  return rc;
}

/// serve --shards N: the same manifest through a sharded
/// CompressionCluster — consistent-hash tenant routing over a
/// heterogeneous fleet, with a per-shard summary and a cluster-level
/// health line on top of the per-tenant table.
int doServeCluster(const std::string& manifestPath, u32 shards,
                   u32 replicas, u32 workers, u32 maxBatch, usize depth,
                   u64 quota, bool unbatched, bool chaos, u64 chaosSeed,
                   bool useCas) {
  const auto entries = parseManifest(manifestPath);
  telemetry::registry().setEnabled(true);
  telemetry::registry().reset();

  cluster::ClusterConfig cfg;
  cfg.shards = shards;
  cfg.replicas = replicas;
  cfg.shard.workers = workers;
  cfg.shard.maxQueueDepth = depth;
  cfg.shard.tenantQuotaBytes = quota;
  if (unbatched) cfg.shard.maxBatchJobs = 1;
  else if (maxBatch > 0) cfg.shard.maxBatchJobs = maxBatch;
  cfg.startPaused = true;
  if (chaos) {
    service::ChaosConfig ccfg;
    ccfg.seed = chaosSeed;
    ccfg.stallTicks = 150;
    ccfg.wedgeTicks = 150;
    cfg.shard.chaosHook = service::SeededChaosSchedule(ccfg).hook();
    cfg.shard.watchdog.minTimeoutMillis = 100;
    cfg.shard.breaker.threshold = 4;
  }
  cluster::CompressionCluster cl(cfg);

  struct Pending {
    const ManifestEntry* entry;
    cluster::ClusterTicket ticket;
  };
  std::vector<Pending> pending;

  u32 maxJobs = 0;
  for (const auto& e : entries) maxJobs = std::max(maxJobs, e.jobs);
  u64 rejections = 0;
  for (u32 j = 0; j < maxJobs; ++j) {
    for (const auto& e : entries) {
      if (j >= e.jobs) continue;
      const auto& info = datagen::datasetInfo(e.dataset);
      const auto field =
          datagen::generateF32(e.dataset, j % info.numFields, e.elems);
      core::Config jobCfg;
      jobCfg.relErrorBound = e.rel;
      if (chaos) {
        jobCfg.checksum = true;
        jobCfg.blockChecksums = true;
        jobCfg.faultRetries = 2;
      }
      for (;;) {
        auto submitted = cl.submitCompress<f32>(
            e.tenant, std::span<const f32>(field), jobCfg);
        if (submitted.accepted()) {
          pending.push_back(Pending{&e, std::move(submitted.ticket)});
          break;
        }
        require(submitted.reason == service::RejectReason::QueueFull ||
                    submitted.reason ==
                        service::RejectReason::QuotaExceeded ||
                    submitted.reason == service::RejectReason::CircuitOpen,
                "serve: submission rejected: " + submitted.detail);
        ++rejections;
        cl.resume();  // start draining so a retried slot can free up
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  cl.resume();
  cl.shutdown();

  struct TenantSummary {
    u32 jobs = 0;
    u32 failed = 0;
    u32 shard = 0;
    u64 bytesIn = 0;
    u64 bytesOut = 0;
  };
  std::vector<std::pair<std::string, TenantSummary>> tenants;
  auto summaryFor = [&](const std::string& t) -> TenantSummary& {
    for (auto& [name, s] : tenants) {
      if (name == t) return s;
    }
    tenants.emplace_back(t, TenantSummary{});
    return tenants.back().second;
  };

  int rc = 0;
  OutcomeTally tally;
  for (const Pending& p : pending) {
    const cluster::ClusterJobResult& r = p.ticket.wait();
    TenantSummary& s = summaryFor(p.entry->tenant);
    s.jobs += 1;
    s.shard = r.shard;
    tally.count(r.job.outcome);
    if (!r.job.ok && r.job.outcome != service::Outcome::Degraded) {
      s.failed += 1;
      std::fprintf(stderr, "serve: tenant %s job %llu failed: %s\n",
                   p.entry->tenant.c_str(),
                   static_cast<unsigned long long>(p.ticket.id()),
                   r.job.error.c_str());
      rc = 1;
      continue;
    }
    s.bytesIn += r.job.compressed.originalBytes;
    s.bytesOut += r.job.compressed.stream.size();
    // Replicate each completed stream as a sealed archive: identical
    // streams from different tenants dedup inside every shard's replica
    // store, and casTotals() below sums the fleet-wide saving.
    if (useCas && !r.job.compressed.stream.empty()) {
      cl.putArchive(p.entry->tenant,
                    "job-" + std::to_string(p.ticket.id()),
                    ConstByteSpan(r.job.compressed.stream));
    }
  }
  if (!tally.served()) rc = 1;

  std::printf("served %zu jobs from %zu tenants on %u shards "
              "(replicas %u, batching %s)\n",
              pending.size(), tenants.size(), cl.shardCount(),
              cfg.replicas, unbatched ? "off" : "on");
  if (rejections > 0) {
    std::printf("backpressure: %llu submissions retried\n",
                static_cast<unsigned long long>(rejections));
  }
  std::printf("per-tenant summary:\n");
  std::printf("  %-12s %6s %6s %12s %12s %8s\n", "tenant", "jobs",
              "shard", "bytes in", "bytes out", "ratio");
  for (const auto& [name, s] : tenants) {
    std::printf("  %-12s %6u %6u %12llu %12llu %8.3f\n", name.c_str(),
                s.jobs, s.shard,
                static_cast<unsigned long long>(s.bytesIn),
                static_cast<unsigned long long>(s.bytesOut),
                s.bytesOut > 0 ? static_cast<f64>(s.bytesIn) /
                                     static_cast<f64>(s.bytesOut)
                               : 0.0);
    if (s.failed > 0) {
      std::printf("  %-12s %6u jobs FAILED\n", name.c_str(), s.failed);
    }
  }
  std::printf("per-shard summary:\n");
  std::printf("  %-6s %-28s %-10s %10s %10s %10s\n", "shard", "device",
              "state", "completed", "batches", "saved");
  for (const cluster::ShardInfo& info : cl.shardInfos()) {
    std::printf("  %-6u %-28s %-10s %10llu %10llu %10llu\n", info.id,
                info.device.c_str(), cluster::toString(info.state),
                static_cast<unsigned long long>(info.stats.completed),
                static_cast<unsigned long long>(info.stats.batches),
                static_cast<unsigned long long>(
                    info.stats.launchesSaved()));
  }
  const cluster::ClusterStats cstats = cl.stats();
  std::printf("health: %llu completed, %llu failed, %llu degraded, "
              "%llu abandoned, %llu canceled; failovers %llu, "
              "steals %llu, spills %llu, shard kills %llu, "
              "kills vetoed %llu\n",
              static_cast<unsigned long long>(tally.completed),
              static_cast<unsigned long long>(tally.failed),
              static_cast<unsigned long long>(tally.degraded),
              static_cast<unsigned long long>(tally.abandoned),
              static_cast<unsigned long long>(tally.canceled),
              static_cast<unsigned long long>(cstats.failovers),
              static_cast<unsigned long long>(cstats.steals),
              static_cast<unsigned long long>(cstats.spills),
              static_cast<unsigned long long>(cstats.shardKills),
              static_cast<unsigned long long>(cstats.killsVetoed));
  if (useCas) printCasLine(cl.casTotals());
  printKernelTable();
  return rc;
}

/// `cuszp2 store <verb> <store.cas> ...` — an on-disk content-addressed
/// block store (docs/CAS.md). Every mutating verb re-saves the store
/// sealed with the XOR-parity trailer, so `cuszp2 verify`/`repair` work
/// on store files too. The CLI opens stores with deferGc so `rm` parks
/// chunks and `store gc` is an observable, separate sweep.
int doStore(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string verb = argv[2];
  const std::string path = argv[3];

  const auto open = [&]() -> std::unique_ptr<cas::BlockStore> {
    return cas::BlockStore::load(path, {.deferGc = true});
  };
  const auto openOrCreate = [&]() -> std::unique_ptr<cas::BlockStore> {
    if (std::filesystem::exists(path)) return open();
    cas::StoreConfig cfg;
    cfg.deferGc = true;
    return std::make_unique<cas::BlockStore>(cfg);
  };
  const auto seal = [&](cas::BlockStore& store) {
    const io::ParityOptions parity;
    store.save(path, &parity);
  };

  if (verb == "put") {
    if (argc != 7) usage();
    const std::string tenant = argv[4];
    const std::string name = argv[5];
    const io::MappedBytes mapped(argv[6]);
    auto store = openOrCreate();
    const cas::PutResult r = store->put(tenant, name, mapped.bytes());
    seal(*store);
    std::printf("put %s/%s: %llu bytes, %llu new + %llu dedup chunks "
                "(%llu physical bytes added)%s\n",
                tenant.c_str(), name.c_str(),
                static_cast<unsigned long long>(r.logicalBytes),
                static_cast<unsigned long long>(r.newChunks),
                static_cast<unsigned long long>(r.dedupChunks),
                static_cast<unsigned long long>(r.physicalBytesAdded),
                r.replaced ? " (replaced)" : "");
    printCasLine(store->stats());
    return 0;
  }
  if (verb == "get") {
    if (argc != 7) usage();
    const std::string tenant = argv[4];
    const std::string name = argv[5];
    auto store = open();
    const std::vector<std::byte> bytes = store->get(tenant, name);
    io::writeBytes(argv[6], ConstByteSpan(bytes));
    std::printf("get %s/%s: %zu bytes -> %s\n", tenant.c_str(),
                name.c_str(), bytes.size(), argv[6]);
    return 0;
  }
  if (verb == "rm") {
    if (argc != 6) usage();
    const std::string tenant = argv[4];
    const std::string name = argv[5];
    auto store = open();
    if (!store->erase(tenant, name)) {
      std::fprintf(stderr, "store rm: no such object %s/%s\n",
                   tenant.c_str(), name.c_str());
      return 1;
    }
    seal(*store);
    const cas::StoreStats s = store->stats();
    std::printf("rm %s/%s: ok (%llu chunks parked for gc)\n",
                tenant.c_str(), name.c_str(),
                static_cast<unsigned long long>(s.parkedChunks));
    return 0;
  }
  if (verb == "gc") {
    if (argc != 4) usage();
    auto store = open();
    const cas::StoreStats before = store->stats();
    const u64 freed = store->gc();
    seal(*store);
    std::printf("gc: freed %llu chunks, %llu bytes\n",
                static_cast<unsigned long long>(freed),
                static_cast<unsigned long long>(
                    store->stats().gcFreedBytes - before.gcFreedBytes));
    printCasLine(store->stats());
    return 0;
  }
  if (verb == "compact") {
    u64 coldTicks = 0;  // CLI compaction is explicit: default everything
    usize maxPerSweep = 0;
    core::PipelineMode pipeline = core::PipelineMode::Auto;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage();
        return argv[++i];
      };
      if (arg == "--cold-ticks") coldTicks = std::stoull(next());
      else if (arg == "--max") maxPerSweep = std::stoull(next());
      else if (arg == "--pipeline") {
        const std::string p = next();
        if (p == "auto") pipeline = core::PipelineMode::Auto;
        else if (p == "huffman") pipeline = core::PipelineMode::Huffman;
        else if (p == "rle") pipeline = core::PipelineMode::Rle;
        else if (p == "lorenzo-fle") pipeline = core::PipelineMode::LorenzoFle;
        else usage();
      } else {
        usage();
      }
    }
    auto store = open();
    cas::CompactionConfig ccfg;
    ccfg.coldTicks = coldTicks;
    ccfg.maxPerSweep =
        maxPerSweep > 0 ? maxPerSweep : std::max<usize>(1, store->objects().size());
    ccfg.pipeline = pipeline;
    cas::CompactionWorker worker(*store, ccfg);
    const usize migrated = worker.runOnce();
    seal(*store);
    const cas::CompactionStats cs = worker.stats();
    std::printf("compact: scanned %llu, migrated %zu to v3, "
                "%llu bytes reclaimed (%llu round-trip rejects, "
                "%llu not-smaller, %llu unsupported, %llu stale)\n",
                static_cast<unsigned long long>(cs.scanned), migrated,
                static_cast<unsigned long long>(cs.bytesReclaimed),
                static_cast<unsigned long long>(cs.roundTripRejects),
                static_cast<unsigned long long>(cs.notSmallerSkips),
                static_cast<unsigned long long>(cs.unsupportedSkips),
                static_cast<unsigned long long>(cs.staleDrops));
    printCasLine(store->stats());
    return 0;
  }
  if (verb == "stat") {
    if (argc != 4) usage();
    return doInfoStore(path);
  }
  if (verb == "recover") {
    std::string jpath = path + ".jnl";
    bool dryRun = false;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--journal") {
        if (i + 1 >= argc) usage();
        jpath = argv[++i];
      } else if (arg == "--dry-run") {
        dryRun = true;
      } else {
        usage();
      }
    }
    if (!std::filesystem::exists(jpath)) {
      std::fprintf(stderr, "store recover: no journal at %s\n",
                   jpath.c_str());
      return 1;
    }
    // recover() resumes the journal for appending, which trims a torn
    // tail in place — so a dry run replays a scratch copy and the real
    // journal stays byte-identical.
    std::string recoverJournal = jpath;
    if (dryRun) {
      recoverJournal = jpath + ".dry-run";
      std::filesystem::copy_file(
          jpath, recoverJournal,
          std::filesystem::copy_options::overwrite_existing);
    }
    cas::RecoveryReport rep;
    std::unique_ptr<cas::BlockStore> store;
    try {
      store = cas::BlockStore::recover(path, recoverJournal,
                                       {.deferGc = true}, &rep);
    } catch (const Error& e) {
      // Damaged journal header / foreign ownerTag: the tail cannot be
      // trusted, so recovery refuses rather than guessing. Exit 2 is the
      // documented "operator intervention" code (docs/DURABILITY.md).
      if (dryRun) std::filesystem::remove(recoverJournal);
      std::fprintf(stderr, "store recover: unrecoverable: %s\n", e.what());
      return 2;
    }
    std::printf("recover: snapshot %s (tick %llu), %llu journal records: "
                "%llu replayed, %llu already in snapshot%s\n",
                rep.snapshotLoaded ? path.c_str() : "absent (fresh store)",
                static_cast<unsigned long long>(rep.snapshotTick),
                static_cast<unsigned long long>(rep.journalRecords),
                static_cast<unsigned long long>(rep.replayedRecords),
                static_cast<unsigned long long>(rep.skippedRecords),
                rep.tornTail
                    ? (" (torn tail: " + std::to_string(rep.discardedBytes) +
                       " bytes discarded)")
                          .c_str()
                    : "");
    std::string verifyError;
    if (!store->verifyAll(&verifyError)) {
      if (dryRun) {
        store.reset();
        std::filesystem::remove(recoverJournal);
      }
      std::fprintf(stderr, "store recover: recovered store fails verify: "
                           "%s\n",
                   verifyError.c_str());
      return 2;
    }
    printCasLine(store->stats());
    if (dryRun) {
      store.reset();  // drop the resumed writer before removing its file
      std::filesystem::remove(recoverJournal);
      std::printf("recover: dry-run, snapshot and journal left untouched\n");
    } else {
      // Seal a fresh snapshot; the attached journal resets behind it, so
      // the next crash replays from this point.
      seal(*store);
      std::printf("recover: snapshot rewritten, journal reset\n");
      printJournalLine(store->journalStatus());
    }
    return 0;
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  // `--trace <path>` works with every subcommand: strip it here, activate
  // a session for the whole run, and write the JSON on the way out.
  std::string tracePath;
  std::vector<char*> args;
  args.reserve(static_cast<usize>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) usage();
      tracePath = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (!tracePath.empty()) {
    g_tracePath = tracePath;
    g_trace = std::make_unique<telemetry::TraceSession>();
    g_traceScope = std::make_unique<telemetry::ScopedTrace>(*g_trace);
  }

  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const auto dispatch = [&]() -> int {
    if (cmd == "compress") {
      if (argc < 4) usage();
      const Options opt = parseOptions(argc, argv, 4);
      return opt.precision == Precision::F32
                 ? doCompress<f32>(argv[2], argv[3], opt)
                 : doCompress<f64>(argv[2], argv[3], opt);
    }
    if (cmd == "decompress") {
      if (argc < 4) usage();
      bool salvage = false;
      f64 fill = 0.0;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--salvage") {
          salvage = true;
        } else if (arg == "--fill" && i + 1 < argc) {
          fill = std::stod(argv[++i]);
        } else {
          usage();
        }
      }
      return salvage ? doSalvageDecompress(argv[2], argv[3], fill)
                     : doDecompress(argv[2], argv[3]);
    }
    if (cmd == "info") {
      if (argc != 3) usage();
      return doInfo(argv[2]);
    }
    if (cmd == "verify") {
      if (argc == 3) return doVerifyIntegrity(argv[2]);
      if (argc != 4) usage();
      return doVerify(argv[2], argv[3]);
    }
    if (cmd == "repair") {
      if (argc < 3 || argc > 4) usage();
      bool dryRun = false;
      if (argc == 4) {
        if (std::string(argv[3]) != "--dry-run") usage();
        dryRun = true;
      }
      return doRepair(argv[2], dryRun);
    }
    if (cmd == "profile") {
      if (argc < 3) usage();
      const Options opt = parseOptions(argc, argv, 3);
      return opt.precision == Precision::F32
                 ? doProfileTyped<f32>(argv[2], opt)
                 : doProfileTyped<f64>(argv[2], opt);
    }
    if (cmd == "serve") {
      std::string manifest;
      u32 shards = 0;
      u32 replicas = 2;
      u32 workers = 2;
      u32 batch = 0;
      usize depth = 256;
      u64 quota = 0;
      bool unbatched = false;
      bool chaos = false;
      u64 chaosSeed = 0;
      bool useCas = false;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
          if (i + 1 >= argc) usage();
          return argv[++i];
        };
        if (arg == "--jobs") manifest = next();
        else if (arg == "--shards") shards = static_cast<u32>(std::stoul(next()));
        else if (arg == "--replicas") replicas = static_cast<u32>(std::stoul(next()));
        else if (arg == "--workers") workers = static_cast<u32>(std::stoul(next()));
        else if (arg == "--batch") batch = static_cast<u32>(std::stoul(next()));
        else if (arg == "--depth") depth = static_cast<usize>(std::stoull(next()));
        else if (arg == "--quota") quota = std::stoull(next());
        else if (arg == "--unbatched") unbatched = true;
        else if (arg == "--chaos-seed") { chaos = true; chaosSeed = std::stoull(next()); }
        else if (arg == "--cas") useCas = true;
        else usage();
      }
      if (manifest.empty()) usage();
      if (shards > 0) {
        return doServeCluster(manifest, shards, replicas, workers, batch,
                              depth, quota, unbatched, chaos, chaosSeed,
                              useCas);
      }
      return doServe(manifest, workers, batch, depth, quota, unbatched,
                     chaos, chaosSeed, useCas);
    }
    if (cmd == "store") return doStore(argc, argv);
    usage();
  };

  int rc;
  try {
    rc = dispatch();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!flushTrace() && rc == 0) rc = 1;
  return rc;
}
